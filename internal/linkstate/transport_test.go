package linkstate

import (
	"net"
	"testing"
	"time"
)

// The happy path of the UDP transport is covered in linkstate_test.go;
// these are the fault paths the deployment harness leans on: injected
// drop rules, datagrams from strangers, truncated wire messages, and
// stale-sequence announcements arriving over the transport.

func udpPair(t *testing.T) (*UDPTransport, *UDPTransport) {
	t.Helper()
	a, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	a.Register(1, b.LocalAddr())
	b.Register(0, a.LocalAddr())
	return a, b
}

func recvWithin(t *testing.T, tr *UDPTransport, d time.Duration) (Packet, bool) {
	t.Helper()
	select {
	case pkt := <-tr.Recv():
		return pkt, true
	case <-time.After(d):
		return Packet{}, false
	}
}

func TestUDPFaultDropsSends(t *testing.T) {
	a, b := udpPair(t)
	a.SetFault(func(peer int) bool { return peer == 1 })
	msg := (&Control{Type: TypeHello, From: 0, Token: 7}).Marshal()
	if err := a.Send(1, msg); err != nil {
		t.Fatalf("faulted send must look like loss, not error: %v", err)
	}
	if pkt, ok := recvWithin(t, b, 300*time.Millisecond); ok {
		t.Fatalf("dropped datagram delivered: %+v", pkt)
	}
	// Clearing the rule restores delivery.
	a.SetFault(nil)
	if err := a.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvWithin(t, b, 2*time.Second); !ok {
		t.Fatal("send after clearing the fault never arrived")
	}
}

func TestUDPFaultDropsInbound(t *testing.T) {
	a, b := udpPair(t)
	b.SetFault(func(peer int) bool { return peer == 0 })
	msg := (&Control{Type: TypeHello, From: 0, Token: 9}).Marshal()
	if err := a.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	if pkt, ok := recvWithin(t, b, 300*time.Millisecond); ok {
		t.Fatalf("inbound-faulted datagram delivered: %+v", pkt)
	}
	b.SetFault(nil)
	if err := a.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvWithin(t, b, 2*time.Second); !ok {
		t.Fatal("inbound delivery never resumed")
	}
}

// TestUDPStrangerCarriesAddr: datagrams from unregistered senders
// arrive with From=-1 but carry the source address — the hook the PEX
// learn-by-hearing rule needs.
func TestUDPStrangerCarriesAddr(t *testing.T) {
	a, _ := udpPair(t)
	stranger, err := net.DialUDP("udp", nil, a.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()
	msg := (&Control{Type: TypeJoin, From: 5, Token: 0}).Marshal()
	if _, err := stranger.Write(msg); err != nil {
		t.Fatal(err)
	}
	pkt, ok := recvWithin(t, a, 2*time.Second)
	if !ok {
		t.Fatal("stranger datagram never arrived")
	}
	if pkt.From != -1 {
		t.Fatalf("stranger resolved to id %d, want -1", pkt.From)
	}
	if pkt.Addr == nil {
		t.Fatal("stranger packet lost its source address")
	}
	want := stranger.LocalAddr().(*net.UDPAddr)
	if pkt.Addr.Port != want.Port {
		t.Fatalf("source port %d, want %d", pkt.Addr.Port, want.Port)
	}
	// Once registered, the same source resolves by id — and an inbound
	// fault on that id now applies.
	a.Register(5, want)
	if _, err := stranger.Write(msg); err != nil {
		t.Fatal(err)
	}
	pkt, ok = recvWithin(t, a, 2*time.Second)
	if !ok {
		t.Fatal("registered stranger's datagram never arrived")
	}
	if pkt.From != 5 {
		t.Fatalf("registered stranger resolved to %d, want 5", pkt.From)
	}
}

// TestUDPRegisterSupersedes pins last-write-wins: re-registering an id
// at a new address drops the old reverse mapping.
func TestUDPRegisterSupersedes(t *testing.T) {
	a, b := udpPair(t)
	c, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a.Register(1, c.LocalAddr()) // node 1 "restarted" at c's address
	c.Register(0, a.LocalAddr())
	msg := (&Control{Type: TypeHello, From: 0, Token: 1}).Marshal()
	if err := a.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvWithin(t, c, 2*time.Second); !ok {
		t.Fatal("send after re-register went to the old address")
	}
	// The old address is now a stranger.
	if err := b.Send(0, msg); err != nil {
		t.Fatal(err)
	}
	pkt, ok := recvWithin(t, a, 2*time.Second)
	if !ok {
		t.Fatal("old-address datagram never arrived")
	}
	if pkt.From != -1 {
		t.Fatalf("superseded address still resolves to id %d", pkt.From)
	}
}

// TestTruncatedDatagrams: every decoder must reject truncations of a
// valid message at every length without panicking; the transport still
// delivers the bytes (it is not the transport's job to parse).
func TestTruncatedDatagrams(t *testing.T) {
	lsa := &LSA{Origin: 3, Seq: 9, Neighbors: []Neighbor{{ID: 1, Cost: 2.5}, {ID: 4, Cost: 0.1}}}
	full := lsa.Marshal()
	for cut := 0; cut < len(full); cut++ {
		if _, err := UnmarshalLSA(full[:cut]); err == nil {
			t.Fatalf("truncated LSA of %d/%d bytes accepted", cut, len(full))
		}
	}
	pl := &PeerList{From: 2, Peers: []PeerAddr{{ID: 1, IP: [4]byte{127, 0, 0, 1}, Port: 9000}}}
	pdata, err := pl.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(pdata); cut++ {
		if _, err := UnmarshalPeerList(pdata[:cut]); err == nil {
			t.Fatalf("truncated pex of %d/%d bytes accepted", cut, len(pdata))
		}
	}
	d := &Data{Src: 0, Dst: 1, Via: NoVia, TTL: 8, Seq: 1, Payload: []byte("hi")}
	ddata, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(ddata); cut++ {
		if _, err := UnmarshalData(ddata[:cut]); err == nil {
			t.Fatalf("truncated data of %d/%d bytes accepted", cut, len(ddata))
		}
	}
	// And over the wire: a truncated datagram arrives intact for the
	// node layer to reject.
	a, b := udpPair(t)
	if err := a.Send(1, full[:HeaderBytes+1]); err != nil {
		t.Fatal(err)
	}
	pkt, ok := recvWithin(t, b, 2*time.Second)
	if !ok {
		t.Fatal("truncated datagram never delivered")
	}
	if _, err := UnmarshalLSA(pkt.Data); err == nil {
		t.Fatal("truncated wire LSA accepted")
	}
}

// TestStaleSequenceOverTransport: an LSA with a lower sequence arriving
// over the transport must not regress the database (the freshness rule
// a restarting node's SeqBase leans on).
func TestStaleSequenceOverTransport(t *testing.T) {
	a, b := udpPair(t)
	db := NewDB(8, 0, nil)
	fresh := &LSA{Origin: 3, Seq: 100, Neighbors: []Neighbor{{ID: 1, Cost: 5}}}
	stale := &LSA{Origin: 3, Seq: 99, Neighbors: []Neighbor{{ID: 2, Cost: 1}}}
	for i, l := range []*LSA{fresh, stale} {
		if err := a.Send(1, l.Marshal()); err != nil {
			t.Fatal(err)
		}
		pkt, ok := recvWithin(t, b, 2*time.Second)
		if !ok {
			t.Fatalf("LSA %d never arrived", i)
		}
		got, err := UnmarshalLSA(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		applied := db.Apply(got)
		if want := i == 0; applied != want {
			t.Fatalf("LSA seq %d: applied=%v, want %v", got.Seq, applied, want)
		}
	}
	// The graph reflects the fresh announcement only.
	g := db.Graph()
	if !g.HasArc(3, 1) || g.HasArc(3, 2) {
		t.Fatal("stale LSA leaked into the announced graph")
	}
	if seq, _ := db.Seq(3); seq != 100 {
		t.Fatalf("db seq %d, want 100", seq)
	}
}

func TestPeerListRoundTrip(t *testing.T) {
	pl := &PeerList{From: 7, Peers: []PeerAddr{
		{ID: 0, IP: [4]byte{127, 0, 0, 1}, Port: 7000},
		{ID: 513, IP: [4]byte{10, 1, 2, 3}, Port: 65535},
	}}
	data, err := pl.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	typ, err := MessageType(data)
	if err != nil || typ != TypePEX {
		t.Fatalf("MessageType = %d, %v", typ, err)
	}
	got, err := UnmarshalPeerList(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != pl.From || len(got.Peers) != len(pl.Peers) {
		t.Fatalf("round trip mangled: %+v", got)
	}
	for i := range pl.Peers {
		if got.Peers[i] != pl.Peers[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got.Peers[i], pl.Peers[i])
		}
	}
	if a := pl.Peers[1].UDPAddr(); a.String() != "10.1.2.3:65535" {
		t.Fatalf("UDPAddr = %s", a)
	}
	// Oversized lists refuse to marshal; oversized counts refuse to parse.
	big := &PeerList{From: 1, Peers: make([]PeerAddr, MaxPexPeers+1)}
	if _, err := big.Marshal(); err == nil {
		t.Fatal("oversized peer list marshalled")
	}
	if _, ok := PeerAddrOf(70000, &net.UDPAddr{IP: net.IPv4(1, 2, 3, 4), Port: 80}); ok {
		t.Fatal("id above uint16 packed")
	}
	if _, ok := PeerAddrOf(1, &net.UDPAddr{IP: net.ParseIP("::1"), Port: 80}); ok {
		t.Fatal("IPv6 packed into a PEX entry")
	}
}
