package linkstate

import (
	"sync"
	"time"

	"egoist/internal/graph"
)

// DB is a node's link-state topology database: the freshest LSA seen from
// every origin, with sequence-number–based supersession and age-based
// expiry. From it a node derives the announced overlay graph (and hence
// the residual graph G−i) used by the wiring policies.
type DB struct {
	mu      sync.RWMutex
	n       int
	entries map[uint16]dbEntry
	maxAge  time.Duration
	now     func() time.Time
}

type dbEntry struct {
	lsa  *LSA
	seen time.Time
}

// NewDB creates a database for an n-node overlay whose entries expire
// after maxAge (0 disables expiry). now, when non-nil, overrides the clock
// for tests.
func NewDB(n int, maxAge time.Duration, now func() time.Time) *DB {
	if now == nil {
		now = time.Now
	}
	return &DB{n: n, entries: make(map[uint16]dbEntry), maxAge: maxAge, now: now}
}

// Apply folds an LSA into the database. It returns true when the LSA was
// fresh (new origin or higher sequence) and should therefore be flooded to
// neighbors.
func (db *DB) Apply(l *LSA) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	cur, ok := db.entries[l.Origin]
	if ok && cur.lsa.Seq >= l.Seq {
		return false
	}
	db.entries[l.Origin] = dbEntry{lsa: l, seen: db.now()}
	return true
}

// Forget drops an origin's entry, as when a node is observed to leave.
func (db *DB) Forget(origin uint16) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.entries, origin)
}

// Seq returns the freshest known sequence number for an origin.
func (db *DB) Seq(origin uint16) (uint64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.entries[origin]
	if !ok {
		return 0, false
	}
	return e.lsa.Seq, true
}

// Origins returns the ids of all unexpired origins.
func (db *DB) Origins() []int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	cutoff := db.cutoff()
	var out []int
	for o, e := range db.entries {
		if cutoff.IsZero() || e.seen.After(cutoff) {
			out = append(out, int(o))
		}
	}
	return out
}

// Graph materializes the announced overlay graph from all unexpired LSAs.
func (db *DB) Graph() *graph.Digraph {
	db.mu.RLock()
	defer db.mu.RUnlock()
	g := graph.New(db.n)
	cutoff := db.cutoff()
	for _, e := range db.entries {
		if !cutoff.IsZero() && !e.seen.After(cutoff) {
			continue
		}
		u := int(e.lsa.Origin)
		if u >= db.n {
			continue
		}
		for _, nb := range e.lsa.Neighbors {
			if int(nb.ID) < db.n && int(nb.ID) != u {
				g.AddArc(u, int(nb.ID), nb.Cost)
			}
		}
	}
	return g
}

// Active returns the alive mask implied by the database: nodes with an
// unexpired LSA (self should be OR-ed in by the caller).
func (db *DB) Active() []bool {
	active := make([]bool, db.n)
	for _, o := range db.Origins() {
		active[o] = true
	}
	return active
}

// Expire drops entries older than maxAge and returns how many were removed.
func (db *DB) Expire() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	cutoff := db.cutoff()
	if cutoff.IsZero() {
		return 0
	}
	removed := 0
	for o, e := range db.entries {
		if !e.seen.After(cutoff) {
			delete(db.entries, o)
			removed++
		}
	}
	return removed
}

func (db *DB) cutoff() time.Time {
	if db.maxAge <= 0 {
		return time.Time{}
	}
	return db.now().Add(-db.maxAge)
}
