package linkstate

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Packet is a datagram received from a peer overlay node.
type Packet struct {
	From int // sender node id, -1 if unknown
	Data []byte
	// Addr is the datagram's source address when the transport has one
	// (UDP); nil on the in-memory bus. PEX-enabled nodes use it to learn
	// the addresses of senders the book does not know yet.
	Addr *net.UDPAddr
}

// Transport moves datagrams between overlay nodes addressed by node id.
// Implementations must be safe for concurrent use.
type Transport interface {
	// Send delivers a datagram to node `to` (best-effort, like UDP).
	Send(to int, data []byte) error
	// Recv returns the channel of inbound packets. The channel closes when
	// the transport is closed.
	Recv() <-chan Packet
	// Close releases resources and closes the Recv channel.
	Close() error
}

// Bus is an in-memory datagram network connecting n transports, used by
// tests and the in-process demo deployment. It can drop packets and delay
// delivery to model lossy links.
type Bus struct {
	mu     sync.Mutex
	eps    []*busEndpoint
	drop   func(from, to int) bool
	delay  func(from, to int) time.Duration
	closed bool
}

// NewBus creates an in-memory network with n endpoints.
func NewBus(n int) *Bus {
	b := &Bus{eps: make([]*busEndpoint, n)}
	for i := range b.eps {
		b.eps[i] = &busEndpoint{bus: b, id: i, ch: make(chan Packet, 1024)}
	}
	return b
}

// SetLoss installs a packet-drop predicate (nil disables loss).
func (b *Bus) SetLoss(drop func(from, to int) bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drop = drop
}

// SetDelay installs a per-pair delivery delay function (nil means
// immediate delivery).
func (b *Bus) SetDelay(delay func(from, to int) time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.delay = delay
}

// Endpoint returns the transport for node id.
func (b *Bus) Endpoint(id int) Transport { return b.eps[id] }

// Close shuts down every endpoint.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, ep := range b.eps {
		ep.close()
	}
}

type busEndpoint struct {
	bus    *Bus
	id     int
	mu     sync.Mutex
	ch     chan Packet
	closed bool
}

func (e *busEndpoint) Send(to int, data []byte) error {
	b := e.bus
	b.mu.Lock()
	if b.closed || to < 0 || to >= len(b.eps) {
		b.mu.Unlock()
		return fmt.Errorf("linkstate: bad destination %d", to)
	}
	if b.drop != nil && b.drop(e.id, to) {
		b.mu.Unlock()
		return nil // silently dropped, like the real network
	}
	dst := b.eps[to]
	var d time.Duration
	if b.delay != nil {
		d = b.delay(e.id, to)
	}
	b.mu.Unlock()

	cp := append([]byte(nil), data...)
	deliver := func() {
		dst.mu.Lock()
		defer dst.mu.Unlock()
		if dst.closed {
			return
		}
		select {
		case dst.ch <- Packet{From: e.id, Data: cp}:
		default: // receiver queue full: drop, like UDP
		}
	}
	if d > 0 {
		time.AfterFunc(d, deliver)
	} else {
		deliver()
	}
	return nil
}

func (e *busEndpoint) Recv() <-chan Packet { return e.ch }

func (e *busEndpoint) Close() error {
	e.bus.mu.Lock()
	defer e.bus.mu.Unlock()
	e.close()
	return nil
}

func (e *busEndpoint) close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.closed = true
		close(e.ch)
	}
}

// UDPTransport sends overlay datagrams over real UDP sockets. The address
// book maps node ids to UDP addresses; it can be updated as membership
// changes.
type UDPTransport struct {
	conn *net.UDPConn
	mu   sync.RWMutex
	book map[int]*net.UDPAddr
	rev  map[string]int
	drop func(peer int) bool
	ch   chan Packet
	done chan struct{}
	once sync.Once

	dropSend atomic.Int64 // datagrams discarded by the fault rule on send
	dropRecv atomic.Int64 // inbound datagrams discarded by the fault rule
}

// NewUDPTransport binds a UDP socket on addr (e.g. "127.0.0.1:0") and
// starts its receive loop.
func NewUDPTransport(addr string) (*UDPTransport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("linkstate: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("linkstate: listen %q: %w", addr, err)
	}
	t := &UDPTransport{
		conn: conn,
		book: make(map[int]*net.UDPAddr),
		rev:  make(map[string]int),
		ch:   make(chan Packet, 1024),
		done: make(chan struct{}),
	}
	go t.recvLoop()
	return t, nil
}

// LocalAddr returns the bound UDP address.
func (t *UDPTransport) LocalAddr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// Register maps a node id to its UDP address, superseding any previous
// address for the id (last write wins — the restart rule of the PEX
// protocol, see pex.go).
func (t *UDPTransport) Register(id int, addr *net.UDPAddr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.book[id]; ok {
		delete(t.rev, old.String())
	}
	t.book[id] = addr
	t.rev[addr.String()] = id
}

// Peers snapshots the address book as gossip entries (non-IPv4 entries
// are skipped: PEX does not carry them). Implements AddressBook.
func (t *UDPTransport) Peers() []PeerAddr {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]PeerAddr, 0, len(t.book))
	for id, addr := range t.book {
		if p, ok := PeerAddrOf(id, addr); ok {
			out = append(out, p)
		}
	}
	return out
}

// SetFault installs a drop predicate consulted on every datagram: a
// send to a matched peer id is silently discarded (like network loss)
// and an inbound datagram from a matched peer (-1 for unknown senders)
// never reaches Recv. This is the deployment harness's partition and
// outage injection point; nil clears all rules.
func (t *UDPTransport) SetFault(drop func(peer int) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.drop = drop
}

// FaultDrops reports how many datagrams the injected fault rule has
// discarded on each leg since the transport started. The counters keep
// counting across rule changes (they tally hits, not rules), so a lab
// scrape sees exactly how much traffic a partition actually suppressed.
func (t *UDPTransport) FaultDrops() (send, recv int64) {
	return t.dropSend.Load(), t.dropRecv.Load()
}

// Send implements Transport.
func (t *UDPTransport) Send(to int, data []byte) error {
	t.mu.RLock()
	addr, ok := t.book[to]
	drop := t.drop
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("linkstate: no address for node %d", to)
	}
	if drop != nil && drop(to) {
		t.dropSend.Add(1)
		return nil // dropped by an injected fault, like the real network
	}
	_, err := t.conn.WriteToUDP(data, addr)
	return err
}

// Recv implements Transport.
func (t *UDPTransport) Recv() <-chan Packet { return t.ch }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	var err error
	t.once.Do(func() {
		close(t.done)
		err = t.conn.Close()
	})
	return err
}

func (t *UDPTransport) recvLoop() {
	defer close(t.ch)
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				// Transient error on a live socket: keep reading.
				continue
			}
		}
		t.mu.RLock()
		from, ok := t.rev[raddr.String()]
		drop := t.drop
		t.mu.RUnlock()
		if !ok {
			from = -1
		}
		if drop != nil && drop(from) {
			t.dropRecv.Add(1)
			continue // inbound leg of an injected fault
		}
		pkt := Packet{From: from, Data: append([]byte(nil), buf[:n]...), Addr: raddr}
		select {
		case t.ch <- pkt:
		default: // receiver falling behind: drop
		}
	}
}
