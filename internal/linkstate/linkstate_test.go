package linkstate

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestLSARoundTrip(t *testing.T) {
	l := &LSA{
		Origin: 7,
		Seq:    42,
		Neighbors: []Neighbor{
			{ID: 1, Cost: 12.3},
			{ID: 9, Cost: 0},
			{ID: 300, Cost: 6553.5},
		},
	}
	got, err := UnmarshalLSA(l.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != 7 || got.Seq != 42 || len(got.Neighbors) != 3 {
		t.Fatalf("round trip: %+v", got)
	}
	for i, nb := range got.Neighbors {
		if nb.ID != l.Neighbors[i].ID {
			t.Fatalf("neighbor %d id %d, want %d", i, nb.ID, l.Neighbors[i].ID)
		}
		if math.Abs(nb.Cost-l.Neighbors[i].Cost) > costUnit/2 {
			t.Fatalf("neighbor %d cost %v, want ~%v", i, nb.Cost, l.Neighbors[i].Cost)
		}
	}
}

func TestLSASizeMatchesPaperAccounting(t *testing.T) {
	l := &LSA{Origin: 1, Seq: 1, Neighbors: make([]Neighbor, 5)}
	// Paper: 192 bits header + 32 bits per neighbor.
	if bits := l.SizeBits(); bits != 192+32*5 {
		t.Fatalf("LSA size = %d bits, want %d", bits, 192+32*5)
	}
	if len(l.Marshal()) != l.Size() {
		t.Fatal("Marshal length disagrees with Size")
	}
}

func TestLSACostSaturates(t *testing.T) {
	l := &LSA{Origin: 1, Seq: 1, Neighbors: []Neighbor{{ID: 2, Cost: 1e12}}}
	got, err := UnmarshalLSA(l.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Neighbors[0].Cost != maxCost {
		t.Fatalf("cost = %v, want saturation at %v", got.Neighbors[0].Cost, maxCost)
	}
}

func TestUnmarshalLSARejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 5),
		make([]byte, HeaderBytes), // zero magic
	}
	for _, c := range cases {
		if _, err := UnmarshalLSA(c); err == nil {
			t.Fatalf("accepted garbage %v", c)
		}
	}
	// Truncated neighbor list.
	l := &LSA{Origin: 1, Seq: 1, Neighbors: []Neighbor{{ID: 2, Cost: 1}}}
	data := l.Marshal()
	if _, err := UnmarshalLSA(data[:len(data)-1]); err == nil {
		t.Fatal("accepted truncated LSA")
	}
	// Control message is not an LSA.
	c := (&Control{Type: TypeHello, From: 3, Token: 9}).Marshal()
	if _, err := UnmarshalLSA(c); err == nil {
		t.Fatal("accepted control message as LSA")
	}
}

func TestControlRoundTrip(t *testing.T) {
	for _, typ := range []byte{TypeHello, TypeHelloAck, TypeEcho, TypeEchoReply} {
		c := &Control{Type: typ, From: 12, Token: 987654321}
		got, err := UnmarshalControl(c.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if *got != *c {
			t.Fatalf("round trip %+v != %+v", got, c)
		}
	}
}

func TestMessageType(t *testing.T) {
	l := (&LSA{Origin: 1, Seq: 1}).Marshal()
	if typ, err := MessageType(l); err != nil || typ != TypeLSA {
		t.Fatalf("MessageType(LSA) = %v,%v", typ, err)
	}
	c := (&Control{Type: TypeEcho, From: 1}).Marshal()
	if typ, err := MessageType(c); err != nil || typ != TypeEcho {
		t.Fatalf("MessageType(Echo) = %v,%v", typ, err)
	}
	if _, err := MessageType([]byte{1, 2}); err == nil {
		t.Fatal("accepted short packet")
	}
}

// Property: any LSA with valid field ranges round-trips.
func TestLSARoundTripProperty(t *testing.T) {
	f := func(origin uint16, seq uint64, ids []uint16) bool {
		l := &LSA{Origin: origin, Seq: seq}
		for i, id := range ids {
			if i >= 100 {
				break
			}
			l.Neighbors = append(l.Neighbors, Neighbor{ID: id, Cost: float64(i) * 1.5})
		}
		got, err := UnmarshalLSA(l.Marshal())
		if err != nil {
			return false
		}
		if got.Origin != l.Origin || got.Seq != l.Seq || len(got.Neighbors) != len(l.Neighbors) {
			return false
		}
		for i := range got.Neighbors {
			if got.Neighbors[i].ID != l.Neighbors[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDBSupersession(t *testing.T) {
	db := NewDB(10, 0, nil)
	l1 := &LSA{Origin: 3, Seq: 1, Neighbors: []Neighbor{{ID: 4, Cost: 5}}}
	if !db.Apply(l1) {
		t.Fatal("fresh LSA rejected")
	}
	if db.Apply(l1) {
		t.Fatal("duplicate LSA accepted as fresh")
	}
	l0 := &LSA{Origin: 3, Seq: 0}
	if db.Apply(l0) {
		t.Fatal("stale LSA accepted")
	}
	l2 := &LSA{Origin: 3, Seq: 2, Neighbors: []Neighbor{{ID: 5, Cost: 7}}}
	if !db.Apply(l2) {
		t.Fatal("newer LSA rejected")
	}
	g := db.Graph()
	if g.HasArc(3, 4) {
		t.Fatal("superseded link survives")
	}
	if w, ok := g.Weight(3, 5); !ok || w != 7 {
		t.Fatalf("missing new link, got %v,%v", w, ok)
	}
}

func TestDBGraphIgnoresSelfLoopsAndOutOfRange(t *testing.T) {
	db := NewDB(4, 0, nil)
	db.Apply(&LSA{Origin: 1, Seq: 1, Neighbors: []Neighbor{{ID: 1, Cost: 1}, {ID: 200, Cost: 1}, {ID: 2, Cost: 3}}})
	g := db.Graph()
	if g.HasArc(1, 1) {
		t.Fatal("self loop in graph")
	}
	if g.NumArcs() != 1 {
		t.Fatalf("NumArcs = %d, want 1", g.NumArcs())
	}
}

func TestDBExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	db := NewDB(5, 10*time.Second, clock)
	db.Apply(&LSA{Origin: 1, Seq: 1, Neighbors: []Neighbor{{ID: 2, Cost: 1}}})
	now = now.Add(5 * time.Second)
	db.Apply(&LSA{Origin: 2, Seq: 1, Neighbors: []Neighbor{{ID: 1, Cost: 1}}})
	now = now.Add(6 * time.Second) // origin 1 now 11s old, origin 2 6s old
	if got := db.Expire(); got != 1 {
		t.Fatalf("Expire removed %d, want 1", got)
	}
	origins := db.Origins()
	if len(origins) != 1 || origins[0] != 2 {
		t.Fatalf("Origins = %v, want [2]", origins)
	}
	active := db.Active()
	if active[1] || !active[2] {
		t.Fatalf("Active = %v", active)
	}
}

func TestDBForget(t *testing.T) {
	db := NewDB(5, 0, nil)
	db.Apply(&LSA{Origin: 1, Seq: 5})
	db.Forget(1)
	if _, ok := db.Seq(1); ok {
		t.Fatal("entry survives Forget")
	}
	// After Forget, the same seq is fresh again (re-join case).
	if !db.Apply(&LSA{Origin: 1, Seq: 5}) {
		t.Fatal("re-join LSA rejected after Forget")
	}
}

func TestBusDelivery(t *testing.T) {
	b := NewBus(3)
	defer b.Close()
	if err := b.Endpoint(0).Send(2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-b.Endpoint(2).Recv():
		if pkt.From != 0 || string(pkt.Data) != "hi" {
			t.Fatalf("got %+v", pkt)
		}
	case <-time.After(time.Second):
		t.Fatal("packet not delivered")
	}
}

func TestBusLoss(t *testing.T) {
	b := NewBus(2)
	defer b.Close()
	b.SetLoss(func(from, to int) bool { return true })
	if err := b.Endpoint(0).Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-b.Endpoint(1).Recv():
		t.Fatalf("lossy bus delivered %+v", pkt)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestBusDelay(t *testing.T) {
	b := NewBus(2)
	defer b.Close()
	b.SetDelay(func(from, to int) time.Duration { return 30 * time.Millisecond })
	start := time.Now()
	if err := b.Endpoint(0).Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Endpoint(1).Recv():
		if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
			t.Fatalf("delivered after %v, want >= ~30ms", elapsed)
		}
	case <-time.After(time.Second):
		t.Fatal("delayed packet never arrived")
	}
}

func TestBusBadDestination(t *testing.T) {
	b := NewBus(2)
	defer b.Close()
	if err := b.Endpoint(0).Send(9, []byte("x")); err == nil {
		t.Fatal("send to unknown node accepted")
	}
}

func TestUDPTransportRoundTrip(t *testing.T) {
	a, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bT, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bT.Close()
	a.Register(1, bT.LocalAddr())
	bT.Register(0, a.LocalAddr())

	msg := (&LSA{Origin: 0, Seq: 1, Neighbors: []Neighbor{{ID: 1, Cost: 2.5}}}).Marshal()
	if err := a.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-bT.Recv():
		if pkt.From != 0 {
			t.Fatalf("from = %d, want 0", pkt.From)
		}
		l, err := UnmarshalLSA(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		if l.Origin != 0 || len(l.Neighbors) != 1 {
			t.Fatalf("LSA %+v", l)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("UDP packet not delivered")
	}
}

func TestUDPSendUnknownNode(t *testing.T) {
	a, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(5, []byte("x")); err == nil {
		t.Fatal("send to unregistered node accepted")
	}
}
