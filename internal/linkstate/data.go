package linkstate

import (
	"encoding/binary"
	"fmt"
)

// TypeData is an application payload routed hop-by-hop over the overlay.
const TypeData = 6

// Data is an overlay-routed application message. Src and Dst are overlay
// node ids; Via, when not NoVia, forces the first overlay hop (the
// redirection primitive the multipath application of Sect. 6.1 uses); TTL
// bounds forwarding; Seq disambiguates messages for the application.
type Data struct {
	Src, Dst uint16
	Via      uint16
	TTL      uint8
	Seq      uint64
	Payload  []byte
}

// NoVia disables first-hop redirection.
const NoVia = ^uint16(0)

// dataHeaderBytes is the Data wire header size.
const dataHeaderBytes = 24

// MaxPayload bounds the payload size of one overlay datagram.
const MaxPayload = 32 * 1024

// Marshal encodes the message.
func (d *Data) Marshal() ([]byte, error) {
	if len(d.Payload) > MaxPayload {
		return nil, fmt.Errorf("linkstate: payload %d exceeds %d", len(d.Payload), MaxPayload)
	}
	buf := make([]byte, dataHeaderBytes+len(d.Payload))
	binary.BigEndian.PutUint16(buf[0:], magic)
	buf[2] = 1
	buf[3] = TypeData
	binary.BigEndian.PutUint16(buf[4:], d.Src)
	binary.BigEndian.PutUint16(buf[6:], d.Dst)
	binary.BigEndian.PutUint16(buf[8:], d.Via)
	buf[10] = d.TTL
	binary.BigEndian.PutUint64(buf[12:], d.Seq)
	binary.BigEndian.PutUint32(buf[20:], uint32(len(d.Payload)))
	copy(buf[dataHeaderBytes:], d.Payload)
	return buf, nil
}

// UnmarshalData decodes a Data message.
func UnmarshalData(data []byte) (*Data, error) {
	if len(data) < dataHeaderBytes {
		return nil, fmt.Errorf("linkstate: short data message (%d bytes)", len(data))
	}
	if binary.BigEndian.Uint16(data[0:]) != magic || data[2] != 1 {
		return nil, fmt.Errorf("linkstate: bad magic/version")
	}
	if data[3] != TypeData {
		return nil, fmt.Errorf("linkstate: not a data message (type %d)", data[3])
	}
	plen := int(binary.BigEndian.Uint32(data[20:]))
	if len(data) != dataHeaderBytes+plen {
		return nil, fmt.Errorf("linkstate: data length %d, want %d", len(data), dataHeaderBytes+plen)
	}
	d := &Data{
		Src: binary.BigEndian.Uint16(data[4:]),
		Dst: binary.BigEndian.Uint16(data[6:]),
		Via: binary.BigEndian.Uint16(data[8:]),
		TTL: data[10],
		Seq: binary.BigEndian.Uint64(data[12:]),
	}
	if plen > 0 {
		d.Payload = append([]byte(nil), data[dataHeaderBytes:]...)
	}
	return d, nil
}
