package linkstate

import (
	"bytes"
	"testing"
)

// FuzzLinkStateDecode throws arbitrary datagrams at the full UDP wire
// decode path — exactly what a node's recvLoop does with bytes from the
// network. Every decoder must reject garbage with an error, never
// panic, and anything that does decode must survive a bounded apply
// against a topology database and re-encode to a decode fixpoint
// (decode∘encode∘decode is the identity on the decoded value).
//
// Run as a 30s smoke in CI, like FuzzSpecDecode in internal/scenario.
func FuzzLinkStateDecode(f *testing.F) {
	// Seed with real encodings of every message type, plus edge shapes.
	lsas := []*LSA{
		{Origin: 0, Seq: 0},
		{Origin: 3, Seq: 42, Neighbors: []Neighbor{{ID: 1, Cost: 2.5}}},
		{Origin: 65535, Seq: ^uint64(0), Neighbors: []Neighbor{
			{ID: 0, Cost: 0}, {ID: 7, Cost: 1e9}, {ID: 65535, Cost: 0.001},
		}},
	}
	for _, l := range lsas {
		f.Add(l.Marshal())
	}
	for _, c := range []*Control{
		{Type: TypeHello, From: 1, Token: 7},
		{Type: TypeHelloAck, From: 2, Token: 7},
		{Type: TypeEcho, From: 3, Token: 99},
		{Type: TypeEchoReply, From: 4, Token: 99},
		{Type: TypeJoin, From: 5, Token: 0},
	} {
		f.Add(c.Marshal())
	}
	if jr, err := (&JoinReply{From: 1, Members: []uint16{2, 3, 4}}).Marshal(); err == nil {
		f.Add(jr)
	}
	if d, err := (&Data{Src: 1, Dst: 2, Via: NoVia, TTL: 8, Seq: 5, Payload: []byte("payload")}).Marshal(); err == nil {
		f.Add(d)
	}
	if pl, err := (&PeerList{From: 9, Peers: []PeerAddr{
		{ID: 1, IP: [4]byte{127, 0, 0, 1}, Port: 9001},
		{ID: 2, IP: [4]byte{10, 0, 0, 2}, Port: 65535},
	}}).Marshal(); err == nil {
		f.Add(pl)
	}
	// Truncations and a corrupted type byte exercise the error paths.
	full := lsas[2].Marshal()
	f.Add(full[:HeaderBytes])
	f.Add(full[:HeaderBytes-1])
	bad := append([]byte(nil), full...)
	bad[3] = 0xFF
	f.Add(bad)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, err := MessageType(data)
		if err != nil {
			return // not even a header; nothing else may be decodable
		}
		switch typ {
		case TypeLSA:
			l, err := UnmarshalLSA(data)
			if err != nil {
				return
			}
			// Bounded apply: whatever decodes must be safe to fold into a
			// database and materialize as a graph.
			db := NewDB(256, 0, nil)
			db.Apply(l)
			g := db.Graph()
			if g.N() != 256 {
				t.Fatalf("graph size %d after apply", g.N())
			}
			// Decode fixpoint (not byte equality: cost quantization and
			// reserved padding may canonicalize).
			l2, err := UnmarshalLSA(l.Marshal())
			if err != nil {
				t.Fatalf("re-encode of decoded LSA does not decode: %v", err)
			}
			if l2.Origin != l.Origin || l2.Seq != l.Seq || len(l2.Neighbors) != len(l.Neighbors) {
				t.Fatalf("LSA fixpoint mismatch: %+v vs %+v", l, l2)
			}
			for i := range l.Neighbors {
				if l2.Neighbors[i] != l.Neighbors[i] {
					t.Fatalf("neighbor %d drifted: %+v vs %+v", i, l.Neighbors[i], l2.Neighbors[i])
				}
			}
		case TypeHello, TypeHelloAck, TypeEcho, TypeEchoReply, TypeJoin:
			c, err := UnmarshalControl(data)
			if err != nil {
				return
			}
			c2, err := UnmarshalControl(c.Marshal())
			if err != nil || *c2 != *c {
				t.Fatalf("control fixpoint mismatch: %+v vs %+v (%v)", c, c2, err)
			}
		case TypeJoinReply:
			jr, err := UnmarshalJoinReply(data)
			if err != nil {
				return
			}
			enc, err := jr.Marshal()
			if err != nil {
				t.Fatalf("decoded join-reply does not re-encode: %v", err)
			}
			jr2, err := UnmarshalJoinReply(enc)
			if err != nil || jr2.From != jr.From || len(jr2.Members) != len(jr.Members) {
				t.Fatalf("join-reply fixpoint mismatch: %+v vs %+v (%v)", jr, jr2, err)
			}
			for i := range jr.Members {
				if jr2.Members[i] != jr.Members[i] {
					t.Fatalf("member %d drifted: %d vs %d", i, jr.Members[i], jr2.Members[i])
				}
			}
		case TypeData:
			d, err := UnmarshalData(data)
			if err != nil {
				return
			}
			enc, err := d.Marshal()
			if err != nil {
				t.Fatalf("decoded data does not re-encode: %v", err)
			}
			d2, err := UnmarshalData(enc)
			if err != nil {
				t.Fatalf("data fixpoint does not decode: %v", err)
			}
			if d2.Src != d.Src || d2.Dst != d.Dst || d2.Via != d.Via ||
				d2.TTL != d.TTL || d2.Seq != d.Seq || !bytes.Equal(d2.Payload, d.Payload) {
				t.Fatalf("data fixpoint mismatch: %+v vs %+v", d, d2)
			}
		case TypePEX:
			pl, err := UnmarshalPeerList(data)
			if err != nil {
				return
			}
			enc, err := pl.Marshal()
			if err != nil {
				t.Fatalf("decoded peer list does not re-encode: %v", err)
			}
			pl2, err := UnmarshalPeerList(enc)
			if err != nil {
				t.Fatalf("peer-list fixpoint does not decode: %v", err)
			}
			if pl2.From != pl.From || len(pl2.Peers) != len(pl.Peers) {
				t.Fatalf("peer-list fixpoint mismatch: %+v vs %+v", pl, pl2)
			}
			for i := range pl.Peers {
				if pl2.Peers[i] != pl.Peers[i] {
					t.Fatalf("peer entry %d drifted: %+v vs %+v", i, pl.Peers[i], pl2.Peers[i])
				}
			}
		}
	})
}
