// Package overlay implements the live EGOIST node runtime (Sect. 3): a
// goroutine-driven node that joins via bootstrap neighbors, floods and
// collects link-state announcements, actively measures candidate links with
// echo probes, re-evaluates its wiring every epoch T with a pluggable
// neighbor-selection policy, heartbeats its donated backbone links, and
// supports immediate or delayed re-wiring on link failure.
//
// The same runtime runs over the in-memory bus (tests, demos) and over UDP
// (cmd/egoistd).
package overlay

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"egoist/internal/cheat"
	"egoist/internal/core"
	"egoist/internal/graph"
	"egoist/internal/linkstate"
)

// RewireMode selects when a dropped link is replaced (Sect. 3.3).
type RewireMode int

const (
	// Delayed re-wiring repairs dropped links only at the next wiring
	// epoch. It is the paper's default.
	Delayed RewireMode = iota
	// Immediate re-wiring repairs a dropped backbone link as soon as the
	// heartbeat monitor declares it dead.
	Immediate
)

// Config parameterizes a live overlay node.
type Config struct {
	// ID is this node's identifier in [0, N).
	ID int
	// N is the overlay size (the id space; not all ids need be alive).
	N int
	// K is the out-degree budget.
	K int
	// Kind is the cost algebra (live nodes measure delay; Additive).
	Kind core.CostKind
	// Policy selects neighbors each epoch. Defaults to BRPolicy.
	Policy core.Policy
	// Transport carries protocol datagrams.
	Transport linkstate.Transport
	// Epoch is the wiring epoch T. Defaults to 60s (paper value); tests
	// use milliseconds.
	Epoch time.Duration
	// Announce is T_announce, the LSA re-broadcast period (< Epoch).
	// Defaults to Epoch/3.
	Announce time.Duration
	// Heartbeat is the donated-link monitoring period. Defaults to
	// Announce/2.
	Heartbeat time.Duration
	// Epsilon is the BR(ε) re-wiring threshold (Sect. 4.3); 0 re-wires on
	// any strict improvement.
	Epsilon float64
	// Mode selects immediate or delayed failure repair.
	Mode RewireMode
	// Bootstrap are the initial neighbors obtained from the bootstrap
	// node; the newcomer connects to them before its first epoch.
	Bootstrap []int
	// DelayOracle, when non-nil, adds a synthetic one-way delay (ms) to
	// echo measurements, letting loopback deployments reproduce wide-area
	// geometry. The probe's real RTT is still included.
	DelayOracle func(from, to int) float64
	// Book, when non-nil, enables PEX gossip membership (the bootstrap
	// protocol documented in linkstate/pex.go): the node learns sender
	// addresses from inbound control messages, answers Join requests
	// with its peer list, and pushes a bounded sample of the book to a
	// few random peers every announce period. The caller must register
	// the node's own address and its bootstrap contacts in the book
	// before Start. Nil keeps the static pre-registered transport.
	Book linkstate.AddressBook
	// SeqBase offsets this node's LSA sequence numbers. A restarting
	// daemon must pass a value exceeding every sequence of its previous
	// life (cmd/egoistd uses the wall clock), or peers still holding the
	// old LSAs discard the new ones as stale until they age out.
	SeqBase uint64
	// Cheat, when non-nil, rewrites this node's announced link costs —
	// the free-rider model of Sect. 4.5.
	Cheat *cheat.Model
	// Seed feeds the node's private RNG.
	Seed int64
	// OnProbe, when non-nil, receives every accepted echo measurement:
	// the probed peer and the one-way delay sample (ms) folded into the
	// estimator. Called on the receive goroutine without the node lock;
	// keep it cheap (the daemon points it at a metrics histogram).
	OnProbe func(peer int, oneWayMS float64)
	// Logf, when non-nil, receives diagnostic output.
	Logf func(format string, args ...interface{})
}

func (c *Config) applyDefaults() error {
	if c.N < 2 || c.ID < 0 || c.ID >= c.N {
		return fmt.Errorf("overlay: bad id/N %d/%d", c.ID, c.N)
	}
	if c.K < 1 {
		return fmt.Errorf("overlay: bad k %d", c.K)
	}
	if c.Transport == nil {
		return fmt.Errorf("overlay: transport required")
	}
	if c.Policy == nil {
		c.Policy = core.BRPolicy{}
	}
	if c.Epoch <= 0 {
		c.Epoch = 60 * time.Second
	}
	if c.Announce <= 0 {
		c.Announce = c.Epoch / 3
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.Announce / 2
	}
	return nil
}

// Node is a running overlay participant.
type Node struct {
	cfg Config
	db  *linkstate.DB
	rng *rand.Rand

	mu        sync.Mutex
	neighbors []int
	seq       uint64
	est       map[int]*ewma     // smoothed one-way delay estimates, ms
	pending   map[uint64]int    // echo token -> peer
	lastAck   map[int]time.Time // heartbeat acks from donated links
	lastReply map[int]time.Time // last echo reply per peer, for staleness
	joined    map[int]bool      // peers learned from bootstrap or PEX
	donated   []int
	rewires   int // cumulative established links
	epochs    int

	fwd forwarding // data plane

	stop chan struct{}
	done sync.WaitGroup
}

// ewma estimates a peer's one-way delay from echo probes. Queueing and
// scheduler noise on a probe RTT is strictly additive — the propagation
// delay is the *floor* of the samples, not their mean — so the estimate
// is the minimum over a sliding window of recent probes (the standard
// ping-based estimator). A plain mean inflates every arc by the host's
// load and, worse, unevenly: co-deployed fleets measured ~50% relative
// error per arc, which both distorts neighbor selection and mis-prices
// announced links. The window keeps the filter adaptive: a genuinely
// slower path ages in after estWindow samples.
type ewma struct {
	v    float64 // current estimate: min over the ring
	ring [estWindow]float64
	n    int // samples folded (ring is full once n >= estWindow)
}

// estWindow is the sample window of the min-filter: at a probe every
// Epoch/4, eight samples span two epochs — the same horizon as the
// probe-staleness cutoff.
const estWindow = 8

func (e *ewma) fold(x float64) {
	e.ring[e.n%estWindow] = x
	e.n++
	lim := e.n
	if lim > estWindow {
		lim = estWindow
	}
	min := e.ring[0]
	for i := 1; i < lim; i++ {
		if e.ring[i] < min {
			min = e.ring[i]
		}
	}
	e.v = min
}

// Start launches the node's protocol loops.
func Start(cfg Config) (*Node, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		db:        linkstate.NewDB(cfg.N, 5*cfg.Epoch, nil),
		rng:       rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.ID)<<17)),
		seq:       cfg.SeqBase,
		est:       make(map[int]*ewma),
		pending:   make(map[uint64]int),
		lastAck:   make(map[int]time.Time),
		lastReply: make(map[int]time.Time),
		joined:    make(map[int]bool),
		stop:      make(chan struct{}),
	}
	for _, b := range cfg.Bootstrap {
		if b != cfg.ID && b >= 0 && b < cfg.N && len(n.neighbors) < cfg.K {
			n.neighbors = append(n.neighbors, b)
		}
	}
	sort.Ints(n.neighbors)
	n.mu.Lock()
	n.announceLocked()
	n.mu.Unlock()
	// Query the bootstrap contacts for the membership list (Sect. 3.1).
	for _, b := range cfg.Bootstrap {
		if b != cfg.ID && b >= 0 && b < cfg.N {
			n.send(b, linkstate.MarshalJoin(uint16(cfg.ID)))
		}
	}

	n.done.Add(2)
	go n.recvLoop()
	go n.timerLoop()
	return n, nil
}

// Stop terminates the node's loops and closes its transport.
func (n *Node) Stop() {
	close(n.stop)
	n.cfg.Transport.Close()
	n.done.Wait()
}

// ID returns the node's identifier.
func (n *Node) ID() int { return n.cfg.ID }

// Neighbors returns the current neighbor set.
func (n *Node) Neighbors() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]int(nil), n.neighbors...)
}

// Graph returns the node's current view of the announced overlay.
func (n *Node) Graph() *graph.Digraph { return n.db.Graph() }

// KnownNodes returns the origins present in the link-state database.
func (n *Node) KnownNodes() []int { return n.db.Origins() }

// Rewires returns the cumulative count of links established after bootstrap.
func (n *Node) Rewires() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rewires
}

// Epochs returns how many wiring epochs have run.
func (n *Node) Epochs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epochs
}

// Seq returns the sequence number of the node's latest LSA. It only
// grows (from SeqBase), so a fleet monitor can spot a wedged announcer
// by a flat series.
func (n *Node) Seq() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seq
}

// JoinedPeers returns how many distinct peers this node has learned
// through bootstrap membership replies or PEX gossip — the node's view
// of fleet membership, 0 under a static roster.
func (n *Node) JoinedPeers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.joined)
}

// Estimate returns the node's smoothed delay estimate to peer (ms).
func (n *Node) Estimate(peer int) (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.est[peer]
	if !ok {
		return 0, false
	}
	return e.v, true
}

func (n *Node) logf(format string, args ...interface{}) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// recvLoop dispatches inbound protocol packets until the transport closes.
func (n *Node) recvLoop() {
	defer n.done.Done()
	for pkt := range n.cfg.Transport.Recv() {
		typ, err := linkstate.MessageType(pkt.Data)
		if err != nil {
			continue
		}
		switch typ {
		case linkstate.TypeLSA:
			n.handleLSA(pkt)
		case linkstate.TypeData:
			n.handleData(pkt)
		case linkstate.TypeJoinReply:
			n.handleJoinReply(pkt)
		case linkstate.TypePEX:
			n.handlePex(pkt)
		default:
			n.handleControl(pkt)
		}
	}
}

func (n *Node) handleLSA(pkt linkstate.Packet) {
	lsa, err := linkstate.UnmarshalLSA(pkt.Data)
	if err != nil || int(lsa.Origin) == n.cfg.ID {
		return
	}
	if n.db.Apply(lsa) {
		n.invalidateRoutes()
		// Fresh: flood to our protocol peers except the one it came from.
		for _, t := range n.floodTargets() {
			if t != pkt.From && t != int(lsa.Origin) {
				n.send(t, pkt.Data)
			}
		}
	}
}

func (n *Node) handleControl(pkt linkstate.Packet) {
	c, err := linkstate.UnmarshalControl(pkt.Data)
	if err != nil {
		return
	}
	from := int(c.From)
	// Learn by hearing (PEX rule 1): a control message's From names the
	// immediate sender, so its source address can enter the book — this
	// is how a rendezvous node learns a newcomer it has never seen.
	n.learnPeer(from, pkt.Addr)
	switch c.Type {
	case linkstate.TypeEcho:
		reply := &linkstate.Control{Type: linkstate.TypeEchoReply, From: uint16(n.cfg.ID), Token: c.Token}
		n.send(from, reply.Marshal())
	case linkstate.TypeEchoReply:
		n.handleEchoReply(c)
	case linkstate.TypeHello:
		ack := &linkstate.Control{Type: linkstate.TypeHelloAck, From: uint16(n.cfg.ID), Token: c.Token}
		n.send(from, ack.Marshal())
	case linkstate.TypeHelloAck:
		n.mu.Lock()
		n.lastAck[from] = time.Now()
		n.mu.Unlock()
	case linkstate.TypeJoin:
		// Bootstrap duty (Sect. 3.1): answer with the membership we know.
		members := []uint16{uint16(n.cfg.ID)}
		for _, o := range n.db.Origins() {
			members = append(members, uint16(o))
		}
		reply := &linkstate.JoinReply{From: uint16(n.cfg.ID), Members: members}
		if data, err := reply.Marshal(); err == nil {
			n.send(from, data)
		}
		// With PEX the ids alone are useless to a newcomer; hand it the
		// addresses too.
		n.sendPeerList(from)
	}
}

// learnPeer folds a sender's claimed id and observed source address
// into the PEX book and the known-peer set. No-op without a book, for
// self-claims, or when the transport carries no addresses.
func (n *Node) learnPeer(id int, addr *net.UDPAddr) {
	if n.cfg.Book == nil || addr == nil || id == n.cfg.ID || id < 0 || id >= n.cfg.N {
		return
	}
	n.cfg.Book.Register(id, addr)
	n.mu.Lock()
	n.joined[id] = true
	n.mu.Unlock()
}

// handlePex folds a gossiped peer list into the book (PEX rules 2+3).
func (n *Node) handlePex(pkt linkstate.Packet) {
	if n.cfg.Book == nil {
		return
	}
	p, err := linkstate.UnmarshalPeerList(pkt.Data)
	if err != nil {
		return
	}
	n.learnPeer(int(p.From), pkt.Addr)
	n.mu.Lock()
	for _, e := range p.Peers {
		id := int(e.ID)
		if id == n.cfg.ID || id >= n.cfg.N {
			continue
		}
		n.cfg.Book.Register(id, e.UDPAddr())
		n.joined[id] = true
	}
	n.mu.Unlock()
}

// sendPeerList sends a bounded sample of the book to one peer.
func (n *Node) sendPeerList(to int) {
	if n.cfg.Book == nil {
		return
	}
	peers := n.cfg.Book.Peers()
	if len(peers) > linkstate.MaxPexPeers {
		peers = peers[:linkstate.MaxPexPeers]
	}
	msg := &linkstate.PeerList{From: uint16(n.cfg.ID), Peers: peers}
	if data, err := msg.Marshal(); err == nil {
		n.send(to, data)
	}
}

// pexFanout is how many random peers each announce-period gossip push
// reaches; membership spreads in O(log n) pushes.
const pexFanout = 3

// gossipPeers pushes the book to pexFanout random known peers. Runs on
// the timer goroutine (the rng's owner).
func (n *Node) gossipPeers() {
	if n.cfg.Book == nil {
		return
	}
	var ids []int
	for _, p := range n.cfg.Book.Peers() {
		if int(p.ID) != n.cfg.ID {
			ids = append(ids, int(p.ID))
		}
	}
	if len(ids) == 0 {
		return
	}
	n.rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
	if len(ids) > pexFanout {
		ids = ids[:pexFanout]
	}
	for _, t := range ids {
		n.sendPeerList(t)
	}
}

// handleJoinReply folds a bootstrap membership list into the node's
// known-peer set so the next probe round reaches them.
func (n *Node) handleJoinReply(pkt linkstate.Packet) {
	reply, err := linkstate.UnmarshalJoinReply(pkt.Data)
	if err != nil {
		return
	}
	n.mu.Lock()
	for _, m := range reply.Members {
		if int(m) != n.cfg.ID && int(m) < n.cfg.N {
			n.joined[int(m)] = true
		}
	}
	n.mu.Unlock()
}

func (n *Node) handleEchoReply(c *linkstate.Control) {
	now := time.Now()
	n.mu.Lock()
	peer, ok := n.pending[c.Token]
	if ok {
		delete(n.pending, c.Token)
	}
	n.mu.Unlock()
	if !ok || peer != int(c.From) {
		return
	}
	rttMS := float64(now.UnixNano()-int64(c.Token)) / 1e6
	if rttMS < 0 {
		return
	}
	oneWay := rttMS / 2
	if n.cfg.DelayOracle != nil {
		oneWay += n.cfg.DelayOracle(n.cfg.ID, peer)
	}
	n.mu.Lock()
	e, ok := n.est[peer]
	if !ok {
		e = &ewma{}
		n.est[peer] = e
	}
	e.fold(oneWay)
	n.lastReply[peer] = now
	n.mu.Unlock()
	if n.cfg.OnProbe != nil {
		n.cfg.OnProbe(peer, oneWay)
	}
}

// timerLoop multiplexes the epoch, announce, heartbeat and measurement
// timers on one goroutine.
func (n *Node) timerLoop() {
	defer n.done.Done()
	// The wiring clock runs at a private phase within T: a fleet of
	// nodes started together would otherwise re-wire in lockstep, each
	// planning against the same stale joint state — the simultaneous-
	// move dynamics the engines avoid by staggering adoptions within an
	// epoch (and real deployments avoid because nothing synchronizes
	// them). The first epoch fires at T + phase, later ones every T.
	phase := time.Duration(n.rng.Int63n(int64(n.cfg.Epoch)))
	firstEpochT := time.NewTimer(n.cfg.Epoch + phase)
	var epochT *time.Ticker
	var epochC <-chan time.Time
	announceT := time.NewTicker(n.cfg.Announce)
	heartbeatT := time.NewTicker(n.cfg.Heartbeat)
	// Probe early so the first epoch has estimates.
	probeT := time.NewTicker(n.cfg.Epoch / 4)
	defer firstEpochT.Stop()
	defer func() {
		if epochT != nil {
			epochT.Stop()
		}
	}()
	defer announceT.Stop()
	defer heartbeatT.Stop()
	defer probeT.Stop()

	n.probeAll()
	for {
		select {
		case <-n.stop:
			return
		case <-probeT.C:
			n.probeAll()
		case <-firstEpochT.C:
			epochT = time.NewTicker(n.cfg.Epoch)
			epochC = epochT.C
			n.runEpoch()
		case <-epochC:
			n.runEpoch()
		case <-announceT.C:
			n.mu.Lock()
			n.announceLocked()
			n.mu.Unlock()
			n.gossipPeers()
		case <-heartbeatT.C:
			n.heartbeat()
		}
	}
}

// probeAll sends one echo to every known node — the paper's O(n)
// per-epoch candidate measurement. Peers come from the link-state
// database plus any bootstrap membership replies.
func (n *Node) probeAll() {
	known := n.db.Origins()
	seen := make(map[int]bool, len(known))
	for _, o := range known {
		seen[o] = true
	}
	n.mu.Lock()
	for m := range n.joined {
		if !seen[m] {
			seen[m] = true
			known = append(known, m)
		}
	}
	n.mu.Unlock()
	for _, peer := range known {
		if peer == n.cfg.ID {
			continue
		}
		token := uint64(time.Now().UnixNano())
		n.mu.Lock()
		// Perturb colliding tokens (same-nanosecond sends).
		for {
			if _, exists := n.pending[token]; !exists {
				break
			}
			token++
		}
		n.pending[token] = peer
		n.mu.Unlock()
		echo := &linkstate.Control{Type: linkstate.TypeEcho, From: uint16(n.cfg.ID), Token: token}
		n.send(peer, echo.Marshal())
	}
}

// runEpoch re-evaluates the node's wiring with the configured policy.
func (n *Node) runEpoch() {
	n.db.Expire()
	g := n.db.Graph()
	active := n.db.Active()
	active[n.cfg.ID] = true

	n.mu.Lock()
	// A peer that has stopped answering probes for two epochs is dead or
	// partitioned away: its EWMA estimate is a ghost that would otherwise
	// keep it wireable forever (its stale LSA can outlive it by several
	// epochs). Treat it as absent; if it heals, the next answered probe
	// reactivates it.
	staleCutoff := time.Now().Add(-2 * n.cfg.Epoch)
	direct := make([]float64, n.cfg.N)
	haveAny := false
	for j := 0; j < n.cfg.N; j++ {
		if j == n.cfg.ID {
			continue
		}
		e, ok := n.est[j]
		if ok {
			if lr, seen := n.lastReply[j]; seen && lr.Before(staleCutoff) {
				ok = false
			}
		}
		if ok {
			direct[j] = e.v
			haveAny = true
		} else {
			// Unmeasured (or silent) peers cannot be costed: treat them
			// as absent until a probe round reaches them.
			direct[j] = core.DisconnectedPenalty
			active[j] = false
		}
	}
	cur := append([]int(nil), n.neighbors...)
	n.mu.Unlock()
	if !haveAny {
		return // nothing measured yet; keep bootstrap wiring
	}

	req := &core.Request{
		Self:   n.cfg.ID,
		K:      n.cfg.K,
		Kind:   n.cfg.Kind,
		Direct: direct,
		Graph:  g,
		Active: active,
		Rng:    n.rng,
	}
	proposed, err := n.cfg.Policy.Select(req)
	if err != nil {
		n.logf("node %d: policy: %v", n.cfg.ID, err)
		return
	}
	if len(proposed) == 0 {
		return
	}

	// BR(ε): adopt only when the improvement is worth it.
	inst := &core.Instance{
		Self:   n.cfg.ID,
		Kind:   n.cfg.Kind,
		Direct: direct,
		Resid:  core.BuildResid(g, n.cfg.ID, n.cfg.Kind, active),
	}
	curVal := inst.Eval(cur)
	newVal := inst.Eval(proposed)
	adopt := len(cur) == 0 || core.ShouldRewire(n.cfg.Kind, curVal, newVal, n.cfg.Epsilon)

	n.mu.Lock()
	n.epochs++
	if adopt {
		added := diffCount(n.neighbors, proposed)
		if added > 0 {
			n.rewires += added
			n.neighbors = proposed
			n.invalidateRoutes()
			n.logf("node %d: rewired to %v (cost %.1f -> %.1f)", n.cfg.ID, proposed, curVal, newVal)
		}
	}
	n.announceLocked()
	n.mu.Unlock()
}

// heartbeat probes donated/backbone links aggressively and, in Immediate
// mode, drops links whose peer has stopped acking.
func (n *Node) heartbeat() {
	n.mu.Lock()
	targets := append([]int(nil), n.neighbors...)
	n.mu.Unlock()
	for _, t := range targets {
		hello := &linkstate.Control{Type: linkstate.TypeHello, From: uint16(n.cfg.ID), Token: uint64(time.Now().UnixNano())}
		n.send(t, hello.Marshal())
	}
	if n.cfg.Mode != Immediate {
		return
	}
	deadline := time.Now().Add(-3 * n.cfg.Heartbeat)
	n.mu.Lock()
	var alive, dropped []int
	for _, t := range targets {
		if ack, ok := n.lastAck[t]; ok && ack.Before(deadline) {
			dropped = append(dropped, t)
			delete(n.lastAck, t)
			delete(n.est, t)
			delete(n.lastReply, t)
		} else {
			alive = append(alive, t)
		}
	}
	if len(dropped) > 0 {
		n.neighbors = alive
		n.db.Forget(uint16(dropped[0]))
		n.announceLocked()
	}
	n.mu.Unlock()
	if len(dropped) > 0 {
		n.logf("node %d: immediate-dropped dead links %v", n.cfg.ID, dropped)
		n.runEpoch() // immediate repair
	}
}

// announceLocked broadcasts a fresh LSA for the current wiring. Callers
// must hold n.mu.
func (n *Node) announceLocked() {
	n.seq++
	lsa := &linkstate.LSA{Origin: uint16(n.cfg.ID), Seq: n.seq}
	for _, nb := range n.neighbors {
		cost := 1.0
		if e, ok := n.est[nb]; ok {
			cost = e.v
		}
		cost = n.cfg.Cheat.Announced(n.cfg.ID, cost, n.cfg.Kind == core.Bottleneck)
		lsa.Neighbors = append(lsa.Neighbors, linkstate.Neighbor{ID: uint16(nb), Cost: cost})
	}
	data := lsa.Marshal()
	for _, nb := range n.floodTargetsLocked() {
		n.send(nb, data)
	}
}

// floodTargets returns the node's protocol peers: its out-neighbors plus
// the nodes that announce a link to it. Overlay links are directed for
// routing but behave as bidirectional adjacencies for LSA flooding, so a
// newcomer that only has out-links still receives the network's LSAs.
func (n *Node) floodTargets() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.floodTargetsLocked()
}

func (n *Node) floodTargetsLocked() []int {
	set := make(map[int]bool, len(n.neighbors)*2)
	for _, nb := range n.neighbors {
		set[nb] = true
	}
	g := n.db.Graph()
	for u := 0; u < g.N(); u++ {
		if u != n.cfg.ID && g.HasArc(u, n.cfg.ID) {
			set[u] = true
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func (n *Node) send(to int, data []byte) {
	if err := n.cfg.Transport.Send(to, data); err != nil {
		n.logf("node %d: send to %d: %v", n.cfg.ID, to, err)
	}
}

func diffCount(old, new []int) int {
	om := make(map[int]bool, len(old))
	for _, v := range old {
		om[v] = true
	}
	added := 0
	for _, v := range new {
		if !om[v] {
			added++
		}
	}
	return added
}
