package overlay

import (
	"testing"
	"time"

	"egoist/internal/cheat"
	"egoist/internal/core"
	"egoist/internal/linkstate"
	"egoist/internal/topology"
)

// TestLiveCheaterAnnouncesInflatedCosts verifies the free-rider hook on
// the live runtime: a node with a cheat model installed floods LSAs whose
// link costs are inflated, and honest nodes' topology databases reflect
// the lie.
func TestLiveCheaterAnnouncesInflatedCosts(t *testing.T) {
	const n, k = 5, 2
	const cheater = 2
	bus := linkstate.NewBus(n)
	defer bus.Close()
	m := topology.RingLattice(n, 10)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			ID: i, N: n, K: k,
			Policy:    core.BRPolicy{},
			Transport: bus.Endpoint(i),
			Epoch:     70 * time.Millisecond,
			Announce:  20 * time.Millisecond,
			Bootstrap: []int{(i + n - 1) % n},
			DelayOracle: func(from, to int) float64 {
				return m[from][to]
			},
			Seed: int64(i),
		}
		if i == cheater {
			cfg.Cheat = cheat.Single(n, cheater, 4)
		}
		node, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	defer stopAll(nodes)

	// Wait until an honest node has the cheater's LSA with a cost, then
	// compare against what the cheater actually measured.
	waitFor(t, 12*time.Second, func() bool {
		g := nodes[0].Graph()
		for _, nb := range nodes[cheater].Neighbors() {
			announced, ok := g.Weight(cheater, nb)
			if !ok {
				continue
			}
			actual, ok := nodes[cheater].Estimate(nb)
			if !ok || actual <= 0 {
				continue
			}
			// 4x inflation with EWMA noise: accept anything clearly >2x.
			if announced > actual*2 {
				return true
			}
		}
		return false
	}, "honest node never observed inflated announcements from the cheater")
}
