package overlay

import (
	"sync"
	"testing"
	"time"

	"egoist/internal/core"
	"egoist/internal/linkstate"
)

func TestDataRoundTripMarshal(t *testing.T) {
	d := &linkstate.Data{Src: 1, Dst: 2, Via: linkstate.NoVia, TTL: 9, Seq: 42, Payload: []byte("hello")}
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := linkstate.UnmarshalData(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != 1 || got.Dst != 2 || got.TTL != 9 || got.Seq != 42 || string(got.Payload) != "hello" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestDataMarshalRejectsHugePayload(t *testing.T) {
	d := &linkstate.Data{Payload: make([]byte, linkstate.MaxPayload+1)}
	if _, err := d.Marshal(); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestUnmarshalDataRejectsGarbage(t *testing.T) {
	if _, err := linkstate.UnmarshalData([]byte("short")); err == nil {
		t.Fatal("short packet accepted")
	}
	d := &linkstate.Data{Src: 1, Dst: 2, Payload: []byte("x")}
	raw, _ := d.Marshal()
	if _, err := linkstate.UnmarshalData(raw[:len(raw)-1]); err == nil {
		t.Fatal("truncated packet accepted")
	}
}

// startDataCluster brings up a converged cluster and returns it.
func startDataCluster(t *testing.T, n, k int) ([]*Node, *linkstate.Bus) {
	t.Helper()
	nodes, bus, _ := startCluster(t, n, k, core.BRPolicy{}, Delayed)
	waitFor(t, 10*time.Second, func() bool {
		for _, node := range nodes {
			if len(node.KnownNodes()) < n-1 {
				return false
			}
		}
		return true
	}, "cluster never converged")
	return nodes, bus
}

func TestOverlayDataDelivery(t *testing.T) {
	const n, k = 8, 2
	nodes, bus := startDataCluster(t, n, k)
	defer bus.Close()
	defer stopAll(nodes)

	var mu sync.Mutex
	received := map[int][]byte{}
	for _, node := range nodes {
		node := node
		node.SetDataHandler(func(src int, payload []byte) {
			mu.Lock()
			received[node.ID()] = append([]byte(nil), payload...)
			mu.Unlock()
			_ = src
		})
	}

	// Node 0 sends to every other node; with k=2 most routes are
	// multi-hop.
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		got := len(received)
		mu.Unlock()
		if got >= n-1 {
			return true
		}
		for dst := 1; dst < n; dst++ {
			_ = nodes[0].Send(dst, []byte("ping"))
		}
		return false
	}, "payloads never delivered to all destinations")

	mu.Lock()
	defer mu.Unlock()
	for dst := 1; dst < n; dst++ {
		if string(received[dst]) != "ping" {
			t.Fatalf("node %d received %q", dst, received[dst])
		}
	}
}

func TestOverlayDataForwardCounts(t *testing.T) {
	const n, k = 8, 1 // k=1: ring-ish, long paths guarantee forwarding
	nodes, bus := startDataCluster(t, n, k)
	defer bus.Close()
	defer stopAll(nodes)

	var delivered sync.WaitGroup
	delivered.Add(1)
	var once sync.Once
	nodes[4].SetDataHandler(func(src int, payload []byte) {
		once.Do(delivered.Done)
	})

	waitFor(t, 10*time.Second, func() bool {
		_ = nodes[0].Send(4, []byte("x"))
		done := make(chan struct{})
		go func() { delivered.Wait(); close(done) }()
		select {
		case <-done:
			return true
		case <-time.After(100 * time.Millisecond):
			return false
		}
	}, "multi-hop payload never delivered")

	forwardedTotal := 0
	for _, node := range nodes {
		_, fwd, _ := node.DataStats()
		forwardedTotal += fwd
	}
	if forwardedTotal == 0 {
		t.Fatal("no node forwarded anything; expected multi-hop routing")
	}
}

func TestSendValidation(t *testing.T) {
	nodes, bus := startDataCluster(t, 4, 2)
	defer bus.Close()
	defer stopAll(nodes)
	if err := nodes[0].Send(0, []byte("x")); err == nil {
		t.Fatal("send to self accepted")
	}
	if err := nodes[0].Send(99, []byte("x")); err == nil {
		t.Fatal("send out of range accepted")
	}
}

func TestSendViaForcesFirstHop(t *testing.T) {
	const n = 6
	nodes, bus := startDataCluster(t, n, 2)
	defer bus.Close()
	defer stopAll(nodes)

	var mu sync.Mutex
	got := false
	nodes[3].SetDataHandler(func(src int, payload []byte) {
		mu.Lock()
		got = true
		mu.Unlock()
	})
	// Redirect through whatever neighbor node 0 currently has.
	waitFor(t, 10*time.Second, func() bool {
		nbs := nodes[0].Neighbors()
		if len(nbs) == 0 {
			return false
		}
		_ = nodes[0].SendVia(3, nbs[0], []byte("via"))
		mu.Lock()
		defer mu.Unlock()
		return got
	}, "redirected payload never arrived")
}
