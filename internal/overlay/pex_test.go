package overlay

import (
	"testing"
	"time"

	"egoist/internal/linkstate"
)

// TestPexBootstrap is the gossip-membership integration test: five
// nodes on real loopback UDP, where only the rendezvous node (0) is
// known to the others at start — node 0 itself knows nobody. Every
// node must learn every other node's address purely through the PEX
// protocol (join replies + announce-period gossip), and the overlay
// must wire itself from that discovered membership.
func TestPexBootstrap(t *testing.T) {
	const n = 5
	transports := make([]*linkstate.UDPTransport, n)
	for i := range transports {
		tr, err := linkstate.NewUDPTransport("127.0.0.1:0")
		if err != nil {
			t.Fatalf("transport %d: %v", i, err)
		}
		transports[i] = tr
		tr.Register(i, tr.LocalAddr()) // self entry: gossiped so others learn us
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		var boot []int
		if i != 0 {
			transports[i].Register(0, transports[0].LocalAddr())
			boot = []int{0}
		}
		node, err := Start(Config{
			ID: i, N: n, K: 2,
			Transport: transports[i],
			Book:      transports[i],
			Epoch:     400 * time.Millisecond,
			Bootstrap: boot,
			Seed:      int64(i) + 1,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = node
		defer node.Stop()
	}

	// Every book must fill in (n entries including self) and every node
	// must come to know every other node.
	deadline := time.Now().Add(15 * time.Second)
	for {
		done := true
		for i, tr := range transports {
			if len(tr.Peers()) < n {
				done = false
				break
			}
			known := map[int]bool{}
			for _, o := range nodes[i].KnownNodes() {
				known[o] = true
			}
			for j := 0; j < n; j++ {
				if j != i && !known[j] {
					done = false
					break
				}
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for i, tr := range transports {
				t.Logf("node %d: book=%d known=%v", i, len(tr.Peers()), nodes[i].KnownNodes())
			}
			t.Fatal("PEX never propagated full membership")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The wiring must follow: every node establishes k out-links from
	// the gossiped membership.
	deadline = time.Now().Add(15 * time.Second)
	for {
		wired := 0
		for _, node := range nodes {
			if len(node.Neighbors()) == 2 {
				wired++
			}
		}
		if wired == n {
			return
		}
		if time.Now().After(deadline) {
			for i, node := range nodes {
				t.Logf("node %d: neighbors=%v", i, node.Neighbors())
			}
			t.Fatalf("only %d/%d nodes wired their budget", wired, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestPexRestartSupersedes pins the restart rule: a node that comes
// back with a fresh transport on a new address and a SeqBase above its
// old sequences must re-enter the overlay — peers must supersede both
// its address (last write wins) and its stale LSAs.
func TestPexRestartSupersedes(t *testing.T) {
	const n = 3
	mk := func(i int) *linkstate.UDPTransport {
		tr, err := linkstate.NewUDPTransport("127.0.0.1:0")
		if err != nil {
			t.Fatalf("transport %d: %v", i, err)
		}
		tr.Register(i, tr.LocalAddr())
		return tr
	}
	start := func(i int, tr *linkstate.UDPTransport, boot []int, seqBase uint64) *Node {
		node, err := Start(Config{
			ID: i, N: n, K: 1,
			Transport: tr, Book: tr,
			Epoch:     300 * time.Millisecond,
			Bootstrap: boot,
			Seed:      int64(i) + 1,
			SeqBase:   seqBase,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		return node
	}
	transports := []*linkstate.UDPTransport{mk(0), mk(1), mk(2)}
	nodes := make([]*Node, n)
	nodes[0] = start(0, transports[0], nil, 0)
	for i := 1; i < n; i++ {
		transports[i].Register(0, transports[0].LocalAddr())
		nodes[i] = start(i, transports[i], []int{0}, 0)
	}
	defer func() {
		for _, node := range nodes {
			node.Stop()
		}
	}()

	waitKnown := func(who int, want int, msg string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			known := map[int]bool{}
			for _, o := range nodes[who].KnownNodes() {
				known[o] = true
			}
			if known[want] {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: node %d never learned %d (known %v)", msg, who, want, nodes[who].KnownNodes())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitKnown(0, 2, "initial bootstrap")
	preSeq, ok := seqOf(nodes[0], 2)
	if !ok {
		t.Fatal("node 0 has no LSA from node 2")
	}

	// Kill node 2 hard (no goodbye), restart on a NEW address with a
	// clock-derived SeqBase, bootstrapping from node 1 this time.
	nodes[2].Stop()
	tr2 := mk(2)
	transports[2] = tr2
	tr2.Register(1, transports[1].LocalAddr())
	nodes[2] = start(2, tr2, []int{1}, uint64(time.Now().UnixNano()))

	// Node 0 must see a *fresher* LSA from the reborn node 2: its old
	// entry is only superseded if the restart's SeqBase outruns it.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if seq, ok := seqOf(nodes[0], 2); ok && seq > preSeq {
			break
		}
		if time.Now().After(deadline) {
			seq, _ := seqOf(nodes[0], 2)
			t.Fatalf("node 0 still holds seq %d from node 2's first life (pre-restart %d)", seq, preSeq)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// And the book must come to point at the new address (the LSA can
	// outrun the gossip that carries the address, so poll).
	want := tr2.LocalAddr().String()
	for {
		got := ""
		for _, p := range transports[0].Peers() {
			if int(p.ID) == 2 {
				got = p.UDPAddr().String()
			}
		}
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 0's book has node 2 at %q, want the restart address %s", got, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func seqOf(n *Node, origin int) (uint64, bool) {
	return n.DB().Seq(uint16(origin))
}

// DB exposes the link-state database to tests in this package.
func (n *Node) DB() *linkstate.DB { return n.db }
