package overlay

import (
	"fmt"
	"sync"

	"egoist/internal/graph"
	"egoist/internal/linkstate"
)

// DataHandler receives overlay-routed payloads delivered to this node.
// It is an alias so plain func literals satisfy interfaces that name the
// unnamed function type (e.g. transfer.DataPlane).
type DataHandler = func(src int, payload []byte)

// forwarding is the node's data plane: a next-hop table over the announced
// overlay, recomputed whenever the link-state view or the node's own
// wiring changes.
type forwarding struct {
	mu      sync.Mutex
	next    []int // next[dst] = next overlay hop, -1 if unreachable
	handler DataHandler
	seq     uint64

	// Delivery and drop counters, exported for tests and monitoring.
	delivered, forwarded, dropped int
}

// SetDataHandler installs the callback for payloads addressed to this
// node. It may be called at any time; a nil handler discards deliveries.
func (n *Node) SetDataHandler(h DataHandler) {
	n.fwd.mu.Lock()
	defer n.fwd.mu.Unlock()
	n.fwd.handler = h
}

// DataStats returns (delivered, forwarded, dropped) message counts.
func (n *Node) DataStats() (delivered, forwarded, dropped int) {
	n.fwd.mu.Lock()
	defer n.fwd.mu.Unlock()
	return n.fwd.delivered, n.fwd.forwarded, n.fwd.dropped
}

// Send routes a payload to dst over the overlay using shortest-path
// forwarding (the overlay routing of Sect. 3.1). It fails when no overlay
// route to dst is currently known.
func (n *Node) Send(dst int, payload []byte) error {
	return n.SendVia(dst, -1, payload)
}

// SendVia routes a payload to dst forcing the first overlay hop through
// via (one of this node's neighbors) — the redirection stepping-stone of
// Sect. 6. via < 0 means ordinary shortest-path forwarding.
func (n *Node) SendVia(dst, via int, payload []byte) error {
	if dst == n.cfg.ID {
		return fmt.Errorf("overlay: cannot send to self")
	}
	if dst < 0 || dst >= n.cfg.N {
		return fmt.Errorf("overlay: bad destination %d", dst)
	}
	first := via
	if first < 0 {
		first = n.nextHop(dst)
		if first < 0 {
			return fmt.Errorf("overlay: no route to %d", dst)
		}
	}
	n.fwd.mu.Lock()
	n.fwd.seq++
	seq := n.fwd.seq
	n.fwd.mu.Unlock()
	msg := &linkstate.Data{
		Src: uint16(n.cfg.ID), Dst: uint16(dst), Via: linkstate.NoVia,
		TTL: uint8(2*n.cfg.N + 4), Seq: seq, Payload: payload,
	}
	data, err := msg.Marshal()
	if err != nil {
		return err
	}
	n.send(first, data)
	return nil
}

// handleData delivers or forwards an overlay data message.
func (n *Node) handleData(pkt linkstate.Packet) {
	msg, err := linkstate.UnmarshalData(pkt.Data)
	if err != nil {
		return
	}
	if int(msg.Dst) == n.cfg.ID {
		n.fwd.mu.Lock()
		n.fwd.delivered++
		handler := n.fwd.handler
		n.fwd.mu.Unlock()
		if handler != nil {
			handler(int(msg.Src), msg.Payload)
		}
		return
	}
	if msg.TTL == 0 {
		n.fwd.mu.Lock()
		n.fwd.dropped++
		n.fwd.mu.Unlock()
		return
	}
	msg.TTL--
	hop := n.nextHop(int(msg.Dst))
	if hop < 0 || hop == pkt.From {
		// No route, or the route points straight back: drop rather than
		// loop. The link-state view will converge and a retry will go
		// through.
		n.fwd.mu.Lock()
		n.fwd.dropped++
		n.fwd.mu.Unlock()
		return
	}
	data, err := msg.Marshal()
	if err != nil {
		return
	}
	n.fwd.mu.Lock()
	n.fwd.forwarded++
	n.fwd.mu.Unlock()
	n.send(hop, data)
}

// nextHop returns the current next overlay hop toward dst (-1 when
// unreachable), computing the route table on demand.
func (n *Node) nextHop(dst int) int {
	n.fwd.mu.Lock()
	table := n.fwd.next
	n.fwd.mu.Unlock()
	if table == nil {
		table = n.recomputeRoutes()
	}
	if dst < 0 || dst >= len(table) {
		return -1
	}
	return table[dst]
}

// recomputeRoutes rebuilds the next-hop table from the link-state view
// plus the node's own links and estimates.
func (n *Node) recomputeRoutes() []int {
	g := n.db.Graph()
	n.mu.Lock()
	for _, nb := range n.neighbors {
		w := 1.0
		if e, ok := n.est[nb]; ok {
			w = e.v
		}
		g.AddArc(n.cfg.ID, nb, w)
	}
	n.mu.Unlock()

	_, parent := graph.Dijkstra(g, n.cfg.ID)
	table := make([]int, n.cfg.N)
	for dst := 0; dst < n.cfg.N; dst++ {
		table[dst] = firstHop(parent, n.cfg.ID, dst)
	}
	n.fwd.mu.Lock()
	n.fwd.next = table
	n.fwd.mu.Unlock()
	return table
}

// invalidateRoutes clears the cached table after wiring or topology
// changes.
func (n *Node) invalidateRoutes() {
	n.fwd.mu.Lock()
	n.fwd.next = nil
	n.fwd.mu.Unlock()
}

// firstHop walks the Dijkstra parent tree from dst back to src and returns
// the first hop on the path, or -1 when unreachable.
func firstHop(parent []int, src, dst int) int {
	if src == dst {
		return -1
	}
	hop := dst
	for parent[hop] != -1 && parent[hop] != src {
		hop = parent[hop]
	}
	if parent[hop] != src {
		return -1
	}
	return hop
}
