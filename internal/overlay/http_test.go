package overlay

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"egoist/internal/core"
)

func TestHTTPStatusEndpoint(t *testing.T) {
	nodes, bus, _ := startCluster(t, 5, 2, core.BRPolicy{}, Delayed)
	defer bus.Close()
	defer stopAll(nodes)

	addr, shutdown, err := nodes[0].ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	waitFor(t, 10*time.Second, func() bool {
		return len(nodes[0].KnownNodes()) >= 4
	}, "node never converged")

	resp, err := http.Get(fmt.Sprintf("http://%s/status", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID != 0 || len(st.Known) < 4 {
		t.Fatalf("status %+v", st)
	}
}

func TestHTTPTopologySVG(t *testing.T) {
	nodes, bus, _ := startCluster(t, 5, 2, core.BRPolicy{}, Delayed)
	defer bus.Close()
	defer stopAll(nodes)

	addr, shutdown, err := nodes[1].ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	waitFor(t, 10*time.Second, func() bool {
		return len(nodes[1].KnownNodes()) >= 4
	}, "node never converged")

	resp, err := http.Get(fmt.Sprintf("http://%s/topology.svg", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.HasPrefix(string(body), "<svg") {
		t.Fatalf("not an svg: %.40s", body)
	}
}

func TestHTTPBadAddr(t *testing.T) {
	nodes, bus, _ := startCluster(t, 4, 2, core.BRPolicy{}, Delayed)
	defer bus.Close()
	defer stopAll(nodes)
	if _, _, err := nodes[0].ServeHTTP("256.256.256.256:99999"); err == nil {
		t.Fatal("bad address accepted")
	}
}
