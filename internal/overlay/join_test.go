package overlay

import (
	"testing"
	"time"

	"egoist/internal/core"
	"egoist/internal/linkstate"
	"egoist/internal/topology"
)

func TestJoinReplyCodec(t *testing.T) {
	r := &linkstate.JoinReply{From: 3, Members: []uint16{0, 1, 2, 9}}
	raw, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := linkstate.UnmarshalJoinReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 3 || len(got.Members) != 4 || got.Members[3] != 9 {
		t.Fatalf("round trip %+v", got)
	}
	if _, err := linkstate.UnmarshalJoinReply(raw[:len(raw)-1]); err == nil {
		t.Fatal("truncated reply accepted")
	}
	if _, err := linkstate.UnmarshalJoinReply(nil); err == nil {
		t.Fatal("nil reply accepted")
	}
}

func TestJoinReplyMemberLimit(t *testing.T) {
	r := &linkstate.JoinReply{Members: make([]uint16, 2000)}
	if _, err := r.Marshal(); err == nil {
		t.Fatal("oversized member list accepted")
	}
}

// TestLateJoinerBootstrapsViaJoinProtocol starts a converged cluster, then
// a latecomer that knows only one contact. The join reply must let it probe
// and discover the whole membership.
func TestLateJoinerBootstrapsViaJoinProtocol(t *testing.T) {
	const n, k = 7, 2
	bus := linkstate.NewBus(n)
	defer bus.Close()
	m := topology.RingLattice(n, 5)
	mk := func(i int, boot []int) *Node {
		node, err := Start(Config{
			ID: i, N: n, K: k,
			Policy:    core.BRPolicy{},
			Transport: bus.Endpoint(i),
			Epoch:     80 * time.Millisecond,
			Announce:  25 * time.Millisecond,
			Bootstrap: boot,
			DelayOracle: func(from, to int) float64 {
				return m[from][to]
			},
			Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		return node
	}
	nodes := make([]*Node, 0, n)
	for i := 0; i < n-1; i++ {
		boot := []int{(i + n - 2) % (n - 1)}
		nodes = append(nodes, mk(i, boot))
	}
	defer func() { stopAll(nodes) }()
	waitFor(t, 10*time.Second, func() bool {
		for _, node := range nodes {
			if len(node.KnownNodes()) < n-2 {
				return false
			}
		}
		return true
	}, "initial cluster never converged")

	late := mk(n-1, []int{0}) // knows only node 0
	nodes = append(nodes, late)

	waitFor(t, 12*time.Second, func() bool {
		return len(late.KnownNodes()) >= n-1
	}, "late joiner never discovered full membership")

	// And the rest must learn about the latecomer via its LSA flood.
	waitFor(t, 12*time.Second, func() bool {
		for _, node := range nodes[:n-1] {
			found := false
			for _, o := range node.KnownNodes() {
				if o == n-1 {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}, "existing nodes never learned of the late joiner")
}
