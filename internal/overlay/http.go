package overlay

import (
	"encoding/json"
	"net"
	"net/http"

	"egoist/internal/graph"
	"egoist/internal/vis"
)

// Status is the JSON snapshot served by the node's HTTP endpoint — the
// programmatic face of the live topology demonstration of Sect. 7.
type Status struct {
	ID        int             `json:"id"`
	Neighbors []int           `json:"neighbors"`
	Known     []int           `json:"known"`
	Rewires   int             `json:"rewires"`
	Epochs    int             `json:"epochs"`
	Estimates map[int]float64 `json:"estimates_ms"`
	Delivered int             `json:"data_delivered"`
	Forwarded int             `json:"data_forwarded"`
	Dropped   int             `json:"data_dropped"`
}

// CurrentStatus snapshots the node's state.
func (n *Node) CurrentStatus() Status {
	s := Status{
		ID:        n.cfg.ID,
		Neighbors: n.Neighbors(),
		Known:     n.KnownNodes(),
		Rewires:   n.Rewires(),
		Epochs:    n.Epochs(),
		Estimates: map[int]float64{},
	}
	s.Delivered, s.Forwarded, s.Dropped = n.DataStats()
	for _, peer := range s.Known {
		if est, ok := n.Estimate(peer); ok {
			s.Estimates[peer] = est
		}
	}
	return s
}

// ServeHTTP starts an HTTP status server on addr and returns the bound
// listener address. Endpoints:
//
//	GET /status        node state as JSON
//	GET /topology.svg  the node's current view of the overlay as SVG
//
// The server stops when the node's transport closes the listener via the
// returned shutdown function.
func (n *Node) ServeHTTP(addr string) (string, func() error, error) {
	return n.ServeHTTPWith(addr, nil)
}

// ServeHTTPWith is ServeHTTP with extra handlers mounted on the same
// mux before the server starts — the daemon uses it to expose the
// routing data plane (internal/plane) next to the status endpoints.
// mount may be nil.
func (n *Node) ServeHTTPWith(addr string, mount func(mux *http.ServeMux)) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	if mount != nil {
		mount(mux)
	}
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(n.CurrentStatus()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/topology.svg", func(w http.ResponseWriter, r *http.Request) {
		g := n.AnnouncedView()
		w.Header().Set("Content-Type", "image/svg+xml")
		if err := vis.Topology(w, g, vis.CirclePositions(g.N()), n.cfg.ID); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	srv := &http.Server{Handler: mux}
	go func() {
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), srv.Close, nil
}

// AnnouncedView returns this node's current link-state view of the
// overlay as a fresh weighted graph, including the node's own links
// (which its LSA database omits) priced at their delay estimates. It
// is what the topology rendering shows and what the daemon's data
// plane compiles route snapshots from.
func (n *Node) AnnouncedView() *graph.Digraph {
	g := n.Graph()
	n.mu.Lock()
	for _, nb := range n.neighbors {
		cost := 1.0
		if e, ok := n.est[nb]; ok {
			cost = e.v
		}
		g.AddArc(n.cfg.ID, nb, cost)
	}
	n.mu.Unlock()
	return g
}
