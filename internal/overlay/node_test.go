package overlay

import (
	"fmt"
	"testing"
	"time"

	"egoist/internal/core"
	"egoist/internal/graph"
	"egoist/internal/linkstate"
	"egoist/internal/topology"
)

// startCluster launches n live nodes on an in-memory bus wired in a
// bootstrap chain (node i bootstraps from node i-1) with a synthetic delay
// oracle from a ring-lattice matrix.
func startCluster(t *testing.T, n, k int, policy core.Policy, mode RewireMode) ([]*Node, *linkstate.Bus, topology.DelayMatrix) {
	t.Helper()
	bus := linkstate.NewBus(n)
	m := topology.RingLattice(n, 5)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		var boot []int
		if i > 0 {
			boot = []int{i - 1}
		} else {
			boot = []int{n - 1}
		}
		node, err := Start(Config{
			ID:        i,
			N:         n,
			K:         k,
			Policy:    policy,
			Transport: bus.Endpoint(i),
			Epoch:     80 * time.Millisecond,
			Announce:  25 * time.Millisecond,
			Heartbeat: 10 * time.Millisecond,
			Mode:      mode,
			Bootstrap: boot,
			DelayOracle: func(from, to int) float64 {
				return m[from][to]
			},
			Seed: int64(i) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	return nodes, bus, m
}

func stopAll(nodes []*Node) {
	for _, n := range nodes {
		if n != nil {
			n.Stop()
		}
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestClusterConvergesToFullKnowledge(t *testing.T) {
	const n, k = 8, 2
	nodes, bus, _ := startCluster(t, n, k, core.BRPolicy{}, Delayed)
	defer bus.Close()
	defer stopAll(nodes)

	waitFor(t, 8*time.Second, func() bool {
		for _, node := range nodes {
			if len(node.KnownNodes()) < n-1 {
				return false
			}
		}
		return true
	}, "nodes never learned the full membership via LSA flooding")
}

func TestClusterRewiresAndStaysConnected(t *testing.T) {
	const n, k = 8, 2
	nodes, bus, _ := startCluster(t, n, k, core.BRPolicy{}, Delayed)
	defer bus.Close()
	defer stopAll(nodes)

	waitFor(t, 10*time.Second, func() bool {
		total := 0
		for _, node := range nodes {
			total += node.Rewires()
			if node.Epochs() < 2 {
				return false
			}
		}
		return total > 0
	}, "no re-wiring happened across the cluster")

	// Build the union overlay from each node's own neighbor list and check
	// strong connectivity.
	g := graph.New(n)
	for _, node := range nodes {
		for _, nb := range node.Neighbors() {
			g.AddArc(node.ID(), nb, 1)
		}
	}
	if !graph.StronglyConnected(g, nil) {
		t.Fatalf("live overlay disconnected: %v", wirings(nodes))
	}
}

func TestEstimatesTrackOracle(t *testing.T) {
	const n, k = 6, 2
	nodes, bus, m := startCluster(t, n, k, core.BRPolicy{}, Delayed)
	defer bus.Close()
	defer stopAll(nodes)

	waitFor(t, 10*time.Second, func() bool {
		est, ok := nodes[0].Estimate(3)
		if !ok {
			return false
		}
		// Oracle adds m[0][3]; loopback RTT noise is tiny. Accept 50%.
		want := m[0][3]
		return est > want*0.5 && est < want*2
	}, "node 0 never produced a sane delay estimate toward node 3")
}

func TestImmediateModeDropsDeadNeighbor(t *testing.T) {
	const n, k = 5, 2
	nodes, bus, _ := startCluster(t, n, k, core.BRPolicy{}, Immediate)
	defer bus.Close()
	defer stopAll(nodes)

	waitFor(t, 8*time.Second, func() bool {
		for _, node := range nodes {
			if len(node.KnownNodes()) < n-1 {
				return false
			}
		}
		return true
	}, "cluster never converged")

	// Find a node that currently links to node 4, then kill node 4.
	victim := nodes[4]
	victim.Stop()
	nodes[4] = nil

	waitFor(t, 10*time.Second, func() bool {
		for _, node := range nodes[:4] {
			for _, nb := range node.Neighbors() {
				if nb == 4 {
					return false
				}
			}
		}
		return true
	}, "live nodes kept linking to the dead node in immediate mode")
}

func TestStartValidation(t *testing.T) {
	bus := linkstate.NewBus(2)
	defer bus.Close()
	cases := []Config{
		{ID: 0, N: 1, K: 1, Transport: bus.Endpoint(0)},
		{ID: 5, N: 2, K: 1, Transport: bus.Endpoint(0)},
		{ID: 0, N: 2, K: 0, Transport: bus.Endpoint(0)},
		{ID: 0, N: 2, K: 1},
	}
	for i, cfg := range cases {
		if _, err := Start(cfg); err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
	}
}

func TestUDPCluster(t *testing.T) {
	const n, k = 4, 2
	m := topology.RingLattice(n, 4)
	transports := make([]*linkstate.UDPTransport, n)
	for i := range transports {
		tr, err := linkstate.NewUDPTransport("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
	}
	for i, tr := range transports {
		for j, other := range transports {
			if i != j {
				tr.Register(j, other.LocalAddr())
			}
		}
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node, err := Start(Config{
			ID:        i,
			N:         n,
			K:         k,
			Transport: transports[i],
			Epoch:     80 * time.Millisecond,
			Announce:  25 * time.Millisecond,
			Bootstrap: []int{(i + n - 1) % n},
			DelayOracle: func(from, to int) float64 {
				return m[from][to]
			},
			Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	defer stopAll(nodes)

	waitFor(t, 10*time.Second, func() bool {
		for _, node := range nodes {
			if len(node.KnownNodes()) < n-1 {
				return false
			}
		}
		return true
	}, "UDP cluster never converged to full membership")
}

func wirings(nodes []*Node) string {
	s := ""
	for _, n := range nodes {
		if n != nil {
			s += fmt.Sprintf("%d->%v ", n.ID(), n.Neighbors())
		}
	}
	return s
}
