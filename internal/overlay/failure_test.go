package overlay

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"egoist/internal/core"
	"egoist/internal/linkstate"
	"egoist/internal/topology"
)

// TestClusterToleratesPacketLoss runs a live cluster over a bus dropping
// 30% of all packets: LSAs are re-announced every Announce period and echo
// probes repeat every epoch, so knowledge must still converge.
func TestClusterToleratesPacketLoss(t *testing.T) {
	const n, k = 6, 2
	bus := linkstate.NewBus(n)
	defer bus.Close()
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(1))
	bus.SetLoss(func(from, to int) bool {
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64() < 0.3
	})
	m := topology.RingLattice(n, 5)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node, err := Start(Config{
			ID: i, N: n, K: k,
			Policy:    core.BRPolicy{},
			Transport: bus.Endpoint(i),
			Epoch:     80 * time.Millisecond,
			Announce:  25 * time.Millisecond,
			Bootstrap: []int{(i + n - 1) % n},
			DelayOracle: func(from, to int) float64 {
				return m[from][to]
			},
			Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	defer stopAll(nodes)

	waitFor(t, 15*time.Second, func() bool {
		for _, node := range nodes {
			if len(node.KnownNodes()) < n-1 {
				return false
			}
		}
		return true
	}, "cluster never converged under 30% packet loss")
}

// TestClusterSurvivesAsymmetricPartition drops all packets toward one node
// for a while, then heals; the victim must re-learn the overlay.
func TestClusterSurvivesTransientBlackout(t *testing.T) {
	const n, k = 5, 2
	bus := linkstate.NewBus(n)
	defer bus.Close()
	var mu sync.Mutex
	blackout := true
	bus.SetLoss(func(from, to int) bool {
		mu.Lock()
		defer mu.Unlock()
		return blackout && to == 4
	})
	m := topology.RingLattice(n, 4)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node, err := Start(Config{
			ID: i, N: n, K: k,
			Policy:    core.BRPolicy{},
			Transport: bus.Endpoint(i),
			Epoch:     70 * time.Millisecond,
			Announce:  20 * time.Millisecond,
			Bootstrap: []int{(i + n - 1) % n},
			DelayOracle: func(from, to int) float64 {
				return m[from][to]
			},
			Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	defer stopAll(nodes)

	// Let the healthy part converge.
	waitFor(t, 10*time.Second, func() bool {
		for _, node := range nodes[:4] {
			if len(node.KnownNodes()) < n-2 {
				return false
			}
		}
		return true
	}, "healthy nodes never converged during blackout")

	mu.Lock()
	blackout = false
	mu.Unlock()

	waitFor(t, 15*time.Second, func() bool {
		return len(nodes[4].KnownNodes()) >= n-1
	}, "blacked-out node never re-learned the overlay after healing")
}

// TestEpsilonSuppressesLiveRewiring checks BR(eps) on the live runtime:
// with a huge threshold a converged node should stop re-wiring.
func TestEpsilonSuppressesLiveRewiring(t *testing.T) {
	const n, k = 6, 2
	bus := linkstate.NewBus(n)
	defer bus.Close()
	m := topology.RingLattice(n, 5)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node, err := Start(Config{
			ID: i, N: n, K: k,
			Policy:    core.BRPolicy{},
			Transport: bus.Endpoint(i),
			Epoch:     60 * time.Millisecond,
			Announce:  20 * time.Millisecond,
			Epsilon:   0.9, // nothing short of 10x improvement re-wires
			Bootstrap: []int{(i + n - 1) % n},
			DelayOracle: func(from, to int) float64 {
				return m[from][to]
			},
			Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	defer stopAll(nodes)

	waitFor(t, 10*time.Second, func() bool {
		for _, node := range nodes {
			if node.Epochs() < 3 {
				return false
			}
		}
		return true
	}, "epochs never ran")

	before := 0
	for _, node := range nodes {
		before += node.Rewires()
	}
	time.Sleep(500 * time.Millisecond)
	after := 0
	for _, node := range nodes {
		after += node.Rewires()
	}
	// First re-wiring away from the single bootstrap link is a >eps
	// improvement and allowed; after that the wiring should be frozen.
	if after > before+n {
		t.Fatalf("re-wiring continued under eps=0.9: %d -> %d", before, after)
	}
}
