package graph

// CSR is an immutable directed weighted graph packed in compressed
// sparse row form: one offsets array and two parallel arc arrays,
// cache-dense and shareable across any number of concurrent readers.
// It is the adjacency representation of the data plane's route
// snapshots (internal/plane), where a graph is built once per epoch
// and then only ever read — the pointer-chasing [][]Arc layout of
// Digraph buys mutability those readers never use.
type CSR struct {
	n   int
	off []int32
	to  []int32
	w   []float64
}

// NewCSR packs n nodes with the given adjacency into CSR form. adj is
// called exactly once per node in id order — adjacency producers may
// be expensive (the data plane prices every arc through the underlay
// oracle) — and may return nil for isolated nodes; the arcs are
// copied, so the caller may reuse the slice across calls.
func NewCSR(n int, adj func(u int) []Arc) *CSR {
	c := &CSR{n: n, off: make([]int32, n+1)}
	for u := 0; u < n; u++ {
		for _, a := range adj(u) {
			c.to = append(c.to, int32(a.To))
			c.w = append(c.w, a.W)
		}
		c.off[u+1] = int32(len(c.to))
	}
	return c
}

// PatchCSR packs a new CSR from base by replacing the out-rows of a
// sparse ascending set of nodes: adj is called exactly once per changed
// node (in id order, arcs copied — same contract as NewCSR) and every
// other row is copied byte-for-byte from base, so an unchanged row's
// arc order and weight bits are preserved by construction. base is not
// modified; the two graphs share no storage. It is the data plane's
// delta-publication path: a churn sub-round touches a handful of rows,
// and re-pricing only those avoids the O(n·k) delay-oracle sweep of a
// full recompile.
func PatchCSR(base *CSR, changed []int, adj func(u int) []Arc) *CSR {
	c := &CSR{
		n:   base.n,
		off: make([]int32, base.n+1),
		to:  make([]int32, 0, len(base.to)),
		w:   make([]float64, 0, len(base.w)),
	}
	ci := 0
	for u := 0; u < base.n; u++ {
		if ci < len(changed) && changed[ci] == u {
			for ci < len(changed) && changed[ci] == u {
				ci++ // tolerate duplicates
			}
			for _, a := range adj(u) {
				c.to = append(c.to, int32(a.To))
				c.w = append(c.w, a.W)
			}
		} else {
			lo, hi := base.off[u], base.off[u+1]
			c.to = append(c.to, base.to[lo:hi]...)
			c.w = append(c.w, base.w[lo:hi]...)
		}
		c.off[u+1] = int32(len(c.to))
	}
	if ci != len(changed) {
		panic("graph: PatchCSR changed list not ascending in [0, n)")
	}
	return c
}

// N returns the number of nodes.
func (c *CSR) N() int { return c.n }

// NumArcs returns the total number of directed edges.
func (c *CSR) NumArcs() int { return len(c.to) }

// OutDegree returns the number of out-arcs of u.
func (c *CSR) OutDegree(u NodeID) int { return int(c.off[u+1] - c.off[u]) }

// Out returns u's out-arc targets and weights as parallel slices.
// The returned slices alias the CSR storage and must not be modified.
func (c *CSR) Out(u NodeID) (to []int32, w []float64) {
	lo, hi := c.off[u], c.off[u+1]
	return c.to[lo:hi], c.w[lo:hi]
}

// DijkstraCSR computes single-source shortest additive distances from
// src over a CSR graph into dist and parent, which must both have
// length c.N(). parent[v] is the predecessor of v on a shortest path
// (-1 for src and unreachable nodes), so callers can reconstruct
// routes with PathTo32. It is DijkstraDist on the packed layout plus
// parent tracking — the inline 4-ary heap, stale entries skipped by
// key comparison, no allocations beyond first-use heap growth.
func (s *SPScratch) DijkstraCSR(c *CSR, src NodeID, dist []float64, parent []int32) {
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	h := dheap{items: s.items[:0]}
	h.pushMin(src, 0)
	for len(h.items) > 0 {
		it := h.popMin()
		u := it.node
		if it.key != dist[u] {
			continue
		}
		lo, hi := c.off[u], c.off[u+1]
		for x := lo; x < hi; x++ {
			v := c.to[x]
			if nd := it.key + c.w[x]; nd < dist[v] {
				dist[v] = nd
				parent[v] = int32(u)
				h.pushMin(int(v), nd)
			}
		}
	}
	s.items = h.items[:0]
}

// PathTo32 reconstructs the src→dst path from an int32 parent array
// (inclusive of both endpoints), or nil if dst was unreachable. It is
// PathTo for the parent layout DijkstraCSR produces.
func PathTo32(parent []int32, src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	if parent[dst] == -1 {
		return nil
	}
	var rev []NodeID
	for v := dst; v != -1; v = int(parent[v]) {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
