// Package graph provides the directed weighted graph engine underlying the
// EGOIST overlay: shortest-path and widest-path (maximum bottleneck
// bandwidth) routing, r-hop neighborhoods for topology-biased sampling,
// disjoint-path counting and max-flow for the multipath applications, and
// connectivity checks used by the wiring policies.
//
// Node identifiers are dense integers in [0, N). Edges are directed and
// weighted; the interpretation of a weight (delay, load, bandwidth) is up to
// the caller. Infinite distance (unreachable) is reported as math.Inf(1).
package graph

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node in a Digraph. IDs are dense integers in [0, N).
type NodeID = int

// Arc is a directed weighted edge to a destination node.
type Arc struct {
	To NodeID
	W  float64
}

// Digraph is a mutable directed weighted graph with a fixed node set.
// The zero value is an empty graph with no nodes; use New to create one
// with n nodes.
type Digraph struct {
	n   int
	out [][]Arc
}

// New returns a Digraph with n nodes and no edges.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Digraph{n: n, out: make([][]Arc, n)}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// NumArcs returns the total number of directed edges.
func (g *Digraph) NumArcs() int {
	total := 0
	for _, arcs := range g.out {
		total += len(arcs)
	}
	return total
}

// AddArc adds a directed edge u->v with weight w, replacing any existing
// u->v edge.
func (g *Digraph) AddArc(u, v NodeID, w float64) {
	g.checkNode(u)
	g.checkNode(v)
	for i := range g.out[u] {
		if g.out[u][i].To == v {
			g.out[u][i].W = w
			return
		}
	}
	g.out[u] = append(g.out[u], Arc{To: v, W: w})
}

// RemoveArc deletes the edge u->v if present, reporting whether it existed.
func (g *Digraph) RemoveArc(u, v NodeID) bool {
	g.checkNode(u)
	g.checkNode(v)
	arcs := g.out[u]
	for i := range arcs {
		if arcs[i].To == v {
			arcs[i] = arcs[len(arcs)-1]
			g.out[u] = arcs[:len(arcs)-1]
			return true
		}
	}
	return false
}

// HasArc reports whether the edge u->v exists.
func (g *Digraph) HasArc(u, v NodeID) bool {
	_, ok := g.Weight(u, v)
	return ok
}

// Weight returns the weight of edge u->v and whether it exists.
func (g *Digraph) Weight(u, v NodeID) (float64, bool) {
	g.checkNode(u)
	g.checkNode(v)
	for _, a := range g.out[u] {
		if a.To == v {
			return a.W, true
		}
	}
	return 0, false
}

// Out returns the out-arcs of u. The returned slice must not be modified.
func (g *Digraph) Out(u NodeID) []Arc {
	g.checkNode(u)
	return g.out[u]
}

// OutDegree returns the number of out-arcs of u.
func (g *Digraph) OutDegree(u NodeID) int {
	g.checkNode(u)
	return len(g.out[u])
}

// Neighbors returns the sorted list of destinations of u's out-arcs.
func (g *Digraph) Neighbors(u NodeID) []NodeID {
	g.checkNode(u)
	ns := make([]NodeID, 0, len(g.out[u]))
	for _, a := range g.out[u] {
		ns = append(ns, a.To)
	}
	sort.Ints(ns)
	return ns
}

// ClearNode removes all out-arcs of u and all in-arcs pointing to u.
// It is used when a node churns off or re-wires its entire neighbor set.
func (g *Digraph) ClearNode(u NodeID) {
	g.checkNode(u)
	g.out[u] = g.out[u][:0]
	for v := range g.out {
		if v == u {
			continue
		}
		arcs := g.out[v]
		for i := 0; i < len(arcs); {
			if arcs[i].To == u {
				arcs[i] = arcs[len(arcs)-1]
				arcs = arcs[:len(arcs)-1]
			} else {
				i++
			}
		}
		g.out[v] = arcs
	}
}

// ClearOut removes all out-arcs of u, keeping in-arcs intact.
func (g *Digraph) ClearOut(u NodeID) {
	g.checkNode(u)
	g.out[u] = g.out[u][:0]
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := New(g.n)
	for u := range g.out {
		c.out[u] = append([]Arc(nil), g.out[u]...)
	}
	return c
}

// Resize empties the graph and sets its node count to n, reusing arc
// storage. It is New for callers that rebuild a scratch graph of varying
// size many times (the scale engine's per-node sub-instances).
func (g *Digraph) Resize(n int) {
	if cap(g.out) < n {
		g.out = make([][]Arc, n)
	}
	g.out = g.out[:n]
	g.n = n
	for u := range g.out {
		g.out[u] = g.out[u][:0]
	}
}

// CopyFrom overwrites g with a deep copy of src, reusing g's arc storage
// where possible. It is Clone for callers that keep a scratch graph alive
// across many residual-graph constructions.
func (g *Digraph) CopyFrom(src *Digraph) {
	if cap(g.out) < src.n {
		g.out = make([][]Arc, src.n)
	}
	g.out = g.out[:src.n]
	g.n = src.n
	for u := range src.out {
		g.out[u] = append(g.out[u][:0], src.out[u]...)
	}
}

// WithoutNode returns a copy of the graph with all arcs incident to u
// removed (the residual graph G−u of the SNS formulation). The node itself
// remains, isolated, so IDs are stable.
func (g *Digraph) WithoutNode(u NodeID) *Digraph {
	c := g.Clone()
	c.ClearNode(u)
	return c
}

func (g *Digraph) checkNode(u NodeID) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, g.n))
	}
}

// Inf is the distance reported between disconnected node pairs.
var Inf = math.Inf(1)
