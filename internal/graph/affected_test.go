package graph

import (
	"math/rand"
	"testing"
)

// randomEdits draws a batch of out-row replacements: each picks a node
// and rewrites its row to a fresh random arc set (possibly empty — a
// departure clearing its out-links).
func randomEdits(rng *rand.Rand, n, batch int) []RowEdit {
	edits := make([]RowEdit, 0, batch)
	seen := make(map[int]bool)
	for len(edits) < batch {
		u := rng.Intn(n)
		if seen[u] {
			continue
		}
		seen[u] = true
		var arcs []Arc
		for t := rng.Intn(4); t > 0; t-- {
			v := rng.Intn(n)
			if v != u && !arcsHaveTarget(arcs, v) {
				arcs = append(arcs, Arc{To: v, W: 0.5 + rng.Float64()*20})
			}
		}
		edits = append(edits, RowEdit{Node: u, NewOut: arcs})
	}
	return edits
}

func arcsHaveTarget(arcs []Arc, v int) bool {
	for _, a := range arcs {
		if a.To == v {
			return true
		}
	}
	return false
}

// applyEditsTo returns a clone of g with the row replacements applied.
func applyEditsTo(g *Digraph, edits []RowEdit) *Digraph {
	r := g.Clone()
	for _, e := range edits {
		r.ClearOut(e.Node)
		for _, a := range e.NewOut {
			r.AddArc(e.Node, a.To, a.W)
		}
	}
	return r
}

// TestAffectedSourcesVsBruteForce is the property the delta publisher
// stands on: every source NOT reported by AffectedSources must have a
// bit-identical distance row in a from-scratch recompute of the edited
// graph. (Reported sources may or may not actually change — the test
// additionally counts that the report is not trivially "everyone", so
// the skip fast-path is exercised.)
func TestAffectedSourcesVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := NewSPForest()
	skipped, total := 0, 0
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(40)
		g := randomDigraphInc(rng, n, 1+rng.Intn(3))
		f.Reset(g, false)
		edits := randomEdits(rng, n, 1+rng.Intn(3))
		affected := f.AffectedSources(edits, nil)
		isAffected := make([]bool, n)
		for _, src := range affected {
			isAffected[src] = true
		}
		truth := APSP(applyEditsTo(g, edits))
		for src := 0; src < n; src++ {
			total++
			if isAffected[src] {
				continue
			}
			skipped++
			for dst := 0; dst < n; dst++ {
				if f.Dist()[src][dst] != truth[src][dst] {
					t.Fatalf("trial %d: source %d not reported affected but dist[%d][%d] changed: %v -> %v (edits %v)",
						trial, src, src, dst, f.Dist()[src][dst], truth[src][dst], edits)
				}
			}
		}
		// The report must be ascending without duplicates — publishers
		// feed it straight into sorted-set logic.
		for i := 1; i < len(affected); i++ {
			if affected[i] <= affected[i-1] {
				t.Fatalf("trial %d: affected list not strictly ascending: %v", trial, affected)
			}
		}
	}
	if skipped == 0 {
		t.Fatalf("no source was ever skipped across %d rows — the fast path never ran", total)
	}
}

// TestAffectedSourcesIdentityEdit: replacing a row with itself crosses
// nothing — the "marked but unchanged" case the engines produce when a
// node re-adopts its current wiring.
func TestAffectedSourcesIdentityEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomDigraphInc(rng, 30, 3)
	f := NewSPForest()
	f.Reset(g, false)
	for u := 0; u < g.N(); u++ {
		edit := RowEdit{Node: u, NewOut: append([]Arc(nil), g.Out(u)...)}
		if got := f.AffectedSources([]RowEdit{edit}, nil); len(got) != 0 {
			t.Fatalf("identity edit of node %d reported affected sources %v", u, got)
		}
	}
}

// TestRowCrossedParallelForm pins the CSR-layout predicate against the
// []Arc-layout one on random rows — the data plane uses the former, the
// forest the latter, and they must agree arc-for-arc.
func TestRowCrossedParallelForm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 6 + rng.Intn(20)
		g := randomDigraphInc(rng, n, 2)
		f := NewSPForest()
		f.Reset(g, false)
		u := rng.Intn(n)
		edit := randomEdits(rng, n, 1)[0]
		edit.Node = u
		oldArcs := g.Out(u)
		oldTo := make([]int32, len(oldArcs))
		oldW := make([]float64, len(oldArcs))
		for i, a := range oldArcs {
			oldTo[i] = int32(a.To)
			oldW[i] = a.W
		}
		newTo := make([]int32, len(edit.NewOut))
		newW := make([]float64, len(edit.NewOut))
		for i, a := range edit.NewOut {
			newTo[i] = int32(a.To)
			newW[i] = a.W
		}
		for src := 0; src < n; src++ {
			dist, parent := f.dist[src], f.parent[src]
			want := rowCrossedArcs(dist, parent, u, oldArcs, edit.NewOut)
			got := RowCrossed(dist, parent, u, oldTo, oldW, newTo, newW)
			if got != want {
				t.Fatalf("trial %d src %d: RowCrossed=%v, rowCrossedArcs=%v", trial, src, got, want)
			}
		}
	}
}

// TestPatchCSR: patching must be byte-identical to packing the edited
// adjacency from scratch, and must leave the base untouched.
func TestPatchCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(30)
		g := randomDigraphInc(rng, n, 1+rng.Intn(3))
		base := NewCSR(n, func(u int) []Arc { return g.Out(u) })
		baseCopy := NewCSR(n, func(u int) []Arc { return g.Out(u) })
		edits := randomEdits(rng, n, 1+rng.Intn(4))
		edited := applyEditsTo(g, edits)
		changed := make([]int, len(edits))
		rows := make(map[int][]Arc, len(edits))
		for i, e := range edits {
			changed[i] = e.Node
			rows[e.Node] = e.NewOut
		}
		sortInts(changed)
		patched := PatchCSR(base, changed, func(u int) []Arc { return rows[u] })
		want := NewCSR(n, func(u int) []Arc { return edited.Out(u) })
		checkSameCSR(t, "patched vs rebuilt", patched, want)
		checkSameCSR(t, "base mutated by patch", base, baseCopy)
	}
	// Empty changed list: a pure copy.
	g := randomDigraphInc(rand.New(rand.NewSource(11)), 12, 2)
	base := NewCSR(12, func(u int) []Arc { return g.Out(u) })
	checkSameCSR(t, "empty patch", PatchCSR(base, nil, nil), base)
}

func TestPatchCSRRejectsUnsorted(t *testing.T) {
	base := NewCSR(4, func(u int) []Arc { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("descending changed list accepted")
		}
	}()
	PatchCSR(base, []int{2, 1}, func(u int) []Arc { return nil })
}

func checkSameCSR(t *testing.T, what string, got, want *CSR) {
	t.Helper()
	if got.N() != want.N() || got.NumArcs() != want.NumArcs() {
		t.Fatalf("%s: shape (%d nodes, %d arcs) vs (%d, %d)", what, got.N(), got.NumArcs(), want.N(), want.NumArcs())
	}
	for u := 0; u < got.N(); u++ {
		gt, gw := got.Out(u)
		wt, ww := want.Out(u)
		if len(gt) != len(wt) {
			t.Fatalf("%s: node %d degree %d vs %d", what, u, len(gt), len(wt))
		}
		for x := range gt {
			if gt[x] != wt[x] || gw[x] != ww[x] {
				t.Fatalf("%s: node %d arc %d: (%d, %v) vs (%d, %v)", what, u, x, gt[x], gw[x], wt[x], ww[x])
			}
		}
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
