package graph

import (
	"math/rand"
	"testing"
)

// TestScratchVariantsMatchAllocatingOnes pins the scratch-based solvers to
// the original allocating ones, bit for bit, across random graphs and
// repeated scratch reuse (stale state from a previous run must not leak).
func TestScratchVariantsMatchAllocatingOnes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s SPScratch
	var dsp, dwide [][]float64
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, 0.25)

		dsp = APSPInto(g, dsp, &s)
		want := APSP(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if dsp[u][v] != want[u][v] {
					t.Fatalf("trial %d: APSPInto[%d][%d] = %v, want %v", trial, u, v, dsp[u][v], want[u][v])
				}
			}
		}

		dwide = APWidestInto(g, dwide, &s)
		wantW := APWidest(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if dwide[u][v] != wantW[u][v] {
					t.Fatalf("trial %d: APWidestInto[%d][%d] = %v, want %v", trial, u, v, dwide[u][v], wantW[u][v])
				}
			}
		}
	}
}

// TestDistVariantsMatchFullSolvers pins the dist-only single-source runs to
// the parent-tracking originals.
func TestDistVariantsMatchFullSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s SPScratch
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 0.25)
		src := rng.Intn(n)

		dist := make([]float64, n)
		s.DijkstraDist(g, src, dist)
		want, _ := Dijkstra(g, src)
		for v := range want {
			if dist[v] != want[v] {
				t.Fatalf("trial %d: DijkstraDist[%d] = %v, want %v", trial, v, dist[v], want[v])
			}
		}

		width := make([]float64, n)
		s.WidestDist(g, src, width)
		wantW, _ := Widest(g, src)
		for v := range wantW {
			if width[v] != wantW[v] {
				t.Fatalf("trial %d: WidestDist[%d] = %v, want %v", trial, v, width[v], wantW[v])
			}
		}
	}
}

func BenchmarkAPSPInto(b *testing.B) {
	g := randomGraph(rand.New(rand.NewSource(3)), 100, 0.1)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			APSP(g)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var s SPScratch
		var dst [][]float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = APSPInto(g, dst, &s)
		}
	})
}
