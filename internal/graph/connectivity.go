package graph

// Reachable returns the set of nodes reachable from src by directed paths,
// including src itself, as a boolean membership slice.
func Reachable(g *Digraph, src NodeID) []bool {
	seen := make([]bool, g.N())
	stack := []NodeID{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.Out(u) {
			if !seen[a.To] {
				seen[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	return seen
}

// StronglyConnected reports whether every node can reach every other node.
// It uses the standard two-pass reachability check (forward from node 0 and
// forward from node 0 in the transpose graph). Graphs with fewer than two
// nodes are trivially strongly connected. The active mask, if non-nil,
// restricts the check to nodes with active[v]==true (used under churn).
func StronglyConnected(g *Digraph, active []bool) bool {
	n := g.N()
	root := -1
	count := 0
	for v := 0; v < n; v++ {
		if active == nil || active[v] {
			if root == -1 {
				root = v
			}
			count++
		}
	}
	if count <= 1 {
		return true
	}
	if !coversActive(reachableMasked(g, root, active), active, count) {
		return false
	}
	return coversActive(reachableMasked(transpose(g), root, active), active, count)
}

func reachableMasked(g *Digraph, src NodeID, active []bool) []bool {
	seen := make([]bool, g.N())
	stack := []NodeID{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.Out(u) {
			if active != nil && !active[a.To] {
				continue
			}
			if !seen[a.To] {
				seen[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	return seen
}

func coversActive(seen, active []bool, count int) bool {
	got := 0
	for v, s := range seen {
		if s && (active == nil || active[v]) {
			got++
		}
	}
	return got == count
}

func transpose(g *Digraph) *Digraph {
	t := New(g.N())
	for u := 0; u < g.N(); u++ {
		for _, a := range g.Out(u) {
			t.AddArc(a.To, u, a.W)
		}
	}
	return t
}

// HopDistances returns the hop-count (unweighted BFS) distances from src.
// Unreachable nodes get -1.
func HopDistances(g *Digraph, src NodeID) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.Out(u) {
			if dist[a.To] == -1 {
				dist[a.To] = dist[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return dist
}

// NeighborhoodSize returns |F(v)|: the number of distinct nodes reachable
// from v within r hops, excluding v itself. It is the quantity that the
// topology-biased sampling of Sect. 5 ranks candidates by.
func NeighborhoodSize(g *Digraph, v NodeID, r int) int {
	members := Neighborhood(g, v, r)
	return len(members)
}

// Neighborhood returns the set of distinct nodes reachable from v within r
// hops, excluding v itself.
func Neighborhood(g *Digraph, v NodeID, r int) []NodeID {
	dist := boundedBFS(g, v, r)
	var out []NodeID
	for u, d := range dist {
		if u != v && d >= 0 {
			out = append(out, u)
		}
	}
	return out
}

func boundedBFS(g *Digraph, src NodeID, r int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == r {
			continue
		}
		for _, a := range g.Out(u) {
			if dist[a.To] == -1 {
				dist[a.To] = dist[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return dist
}
