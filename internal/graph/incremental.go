package graph

// SPForest maintains all-pairs shortest-path (or widest-path) distances
// with parent trees under the one edit pattern of the best-response
// engine: temporarily removing one node's out-arcs (the residual graph
// G−i of the SNS formulation) and then restoring them. A removal repairs
// only the shortest-path trees that actually routed through the removed
// arcs — for most (source, removed-node) pairs an O(out-degree) check —
// instead of recomputing the full APSP per node, and the restore replays
// an exact undo log, so the matrix after RestoreOut is bit-identical to
// the one before RemoveOut.
//
// Distances computed after a removal equal a from-scratch APSP of the
// edited graph exactly (not just approximately): additive path costs are
// folded left-to-right along the path in both algorithms, so the
// floating-point values agree — which is what lets the parallel
// simulation engine swap this in for BuildResid without perturbing its
// byte-identical determinism contract.
//
// A forest serves one goroutine; the parallel engine keeps one per
// worker.
type SPForest struct {
	widest bool
	n      int
	g      *Digraph // private copy of the snapshot graph
	dist   [][]float64
	parent [][]int32

	// Removal state (one outstanding removal at a time).
	removed     []Arc
	removedFrom int
	undo        []undoEntry

	// Reusable per-repair scratch.
	affected  []bool
	childHead []int32
	childNext []int32
	queue     []int32
	items     []heapItem
}

// undoEntry records one overwritten (source, node) distance/parent pair.
type undoEntry struct {
	src, node int32
	dist      float64
	parent    int32
}

// NewSPForest returns an empty forest; call Reset before use.
func NewSPForest() *SPForest { return &SPForest{removedFrom: -1} }

// Reset (re)initializes the forest for graph g under the additive
// (widest=false) or bottleneck (widest=true) algebra: a full APSP with
// parent tracking. The graph is copied; later mutations of g are not
// seen.
func (f *SPForest) Reset(g *Digraph, widest bool) {
	n := g.N()
	f.widest = widest
	f.n = n
	if f.g == nil {
		f.g = New(n)
	}
	f.g.CopyFrom(g)
	f.dist = reshape(f.dist, n)
	f.parent = reshapeInt32(f.parent, n)
	f.removed = f.removed[:0]
	f.removedFrom = -1
	f.undo = f.undo[:0]
	f.affected = boolsN(f.affected, n)
	f.childHead = int32sN(f.childHead, n)
	f.childNext = int32sN(f.childNext, n)
	for src := 0; src < n; src++ {
		f.sssp(src)
	}
}

// Dist exposes the maintained distance matrix, indexed [src][dst]. The
// rows are valid until the next Reset/RemoveOut/RestoreOut call and must
// not be modified.
func (f *SPForest) Dist() [][]float64 { return f.dist }

// N returns the node count of the current graph.
func (f *SPForest) N() int { return f.n }

// worstVal is the algebra's unreachable marker.
func (f *SPForest) worstVal() float64 {
	if f.widest {
		return 0
	}
	return Inf
}

// selfVal is the algebra's source self-distance.
func (f *SPForest) selfVal() float64 {
	if f.widest {
		return Inf
	}
	return 0
}

// better reports whether a beats b under the algebra.
func (f *SPForest) better(a, b float64) bool {
	if f.widest {
		return a > b
	}
	return a < b
}

// extend folds an arc weight onto a path value.
func (f *SPForest) extend(base, w float64) float64 {
	if f.widest {
		if w < base {
			return w
		}
		return base
	}
	return base + w
}

// sssp runs a full single-source computation for src into the forest's
// matrices (used by Reset).
func (f *SPForest) sssp(src int) {
	dist, parent := f.dist[src], f.parent[src]
	for i := range dist {
		dist[i] = f.worstVal()
		parent[i] = -1
	}
	dist[src] = f.selfVal()
	h := dheap{items: f.items[:0]}
	f.push(&h, src, dist[src])
	for len(h.items) > 0 {
		it := f.pop(&h)
		u := it.node
		if !sameKey(it.key, dist[u]) {
			continue
		}
		for _, a := range f.g.Out(u) {
			if nd := f.extend(dist[u], a.W); f.better(nd, dist[a.To]) {
				dist[a.To] = nd
				parent[a.To] = int32(u)
				f.push(&h, a.To, nd)
			}
		}
	}
	f.items = h.items[:0]
}

// push and pop dispatch to the heap order matching the algebra.
func (f *SPForest) push(h *dheap, node NodeID, key float64) {
	if f.widest {
		h.pushMax(node, key)
	} else {
		h.pushMin(node, key)
	}
}

func (f *SPForest) pop(h *dheap) heapItem {
	if f.widest {
		return h.popMax()
	}
	return h.popMin()
}

// sameKey compares a heap key against the current distance, treating the
// widest-path +Inf self value correctly.
func sameKey(a, b float64) bool { return a == b }

// RemoveOut removes node u's out-arcs from the maintained graph and
// repairs every affected shortest-path tree, logging exact undo
// information. Only one removal may be outstanding; call RestoreOut
// before the next RemoveOut.
func (f *SPForest) RemoveOut(u int) {
	if f.removedFrom >= 0 {
		panic("graph: SPForest.RemoveOut with a removal outstanding")
	}
	f.removed = append(f.removed[:0], f.g.Out(u)...)
	f.removedFrom = u
	f.undo = f.undo[:0]
	f.g.ClearOut(u)
	if len(f.removed) == 0 {
		return
	}
	for src := 0; src < f.n; src++ {
		f.repairAfterRemove(src, u)
	}
}

// repairAfterRemove fixes source src's tree after u's out-arcs were
// removed. Trees that never routed through u (parent[v] != u for every
// removed head v) are untouched — the common case, detected in
// O(out-degree).
func (f *SPForest) repairAfterRemove(src, u int) {
	dist, parent := f.dist[src], f.parent[src]
	cut := false
	for _, a := range f.removed {
		if parent[a.To] == int32(u) {
			cut = true
			break
		}
	}
	if !cut {
		return
	}
	// Build the tree's child lists in one pass, then collect the
	// descendants of u's cut children.
	for i := range f.childHead {
		f.childHead[i] = -1
	}
	for v := 0; v < f.n; v++ {
		if p := parent[v]; p >= 0 {
			f.childNext[v] = f.childHead[p]
			f.childHead[p] = int32(v)
		}
	}
	f.queue = f.queue[:0]
	for _, a := range f.removed {
		if parent[a.To] == int32(u) {
			f.queue = append(f.queue, int32(a.To))
		}
	}
	for qi := 0; qi < len(f.queue); qi++ {
		v := f.queue[qi]
		f.affected[v] = true
		for c := f.childHead[v]; c >= 0; c = f.childNext[c] {
			f.queue = append(f.queue, c)
		}
	}
	// Invalidate the affected region, logging prior values for the undo.
	for _, v := range f.queue {
		f.undo = append(f.undo, undoEntry{src: int32(src), node: v, dist: dist[v], parent: parent[v]})
		dist[v] = f.worstVal()
		parent[v] = -1
	}
	// Re-relax from the unaffected boundary: any arc x->w with x intact
	// and w affected seeds the repair heap, then a restricted Dijkstra
	// settles the region (arcs between affected nodes included).
	h := dheap{items: f.items[:0]}
	for x := 0; x < f.n; x++ {
		if f.affected[x] || dist[x] == f.worstVal() {
			continue
		}
		for _, a := range f.g.Out(x) {
			if !f.affected[a.To] {
				continue
			}
			if nd := f.extend(dist[x], a.W); f.better(nd, dist[a.To]) {
				dist[a.To] = nd
				parent[a.To] = int32(x)
				f.push(&h, a.To, nd)
			}
		}
	}
	for len(h.items) > 0 {
		it := f.pop(&h)
		w := it.node
		if !sameKey(it.key, dist[w]) {
			continue
		}
		for _, a := range f.g.Out(w) {
			if !f.affected[a.To] {
				continue
			}
			if nd := f.extend(dist[w], a.W); f.better(nd, dist[a.To]) {
				dist[a.To] = nd
				parent[a.To] = int32(w)
				f.push(&h, a.To, nd)
			}
		}
	}
	f.items = h.items[:0]
	for _, v := range f.queue {
		f.affected[v] = false
	}
}

// RestoreOut re-adds the arcs removed by the last RemoveOut and replays
// the undo log, restoring the exact pre-removal matrices.
func (f *SPForest) RestoreOut() {
	if f.removedFrom < 0 {
		panic("graph: SPForest.RestoreOut without a removal outstanding")
	}
	for _, a := range f.removed {
		f.g.AddArc(f.removedFrom, a.To, a.W)
	}
	// Reverse replay: entries were appended oldest-first per source, and
	// a node appears at most once per source, so order within a source
	// does not matter — but reverse replay stays correct even if that
	// invariant ever changes.
	for i := len(f.undo) - 1; i >= 0; i-- {
		e := f.undo[i]
		f.dist[e.src][e.node] = e.dist
		f.parent[e.src][e.node] = e.parent
	}
	f.removed = f.removed[:0]
	f.removedFrom = -1
	f.undo = f.undo[:0]
}

// reshapeInt32 returns dst as an n×n int32 matrix backed by one block,
// reusing storage when the shape already matches.
func reshapeInt32(dst [][]int32, n int) [][]int32 {
	if len(dst) == n && (n == 0 || len(dst[0]) == n) {
		return dst
	}
	flat := make([]int32, n*n)
	dst = make([][]int32, n)
	for i := range dst {
		dst[i] = flat[i*n : (i+1)*n]
	}
	return dst
}

// boolsN resizes a bool scratch slice to n, all false.
func boolsN(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// int32sN resizes an int32 scratch slice to n.
func int32sN(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}
