package graph

import "math"

// MaxFlow computes the maximum s-t flow treating edge weights as capacities,
// using the Edmonds–Karp algorithm (BFS augmenting paths). It is used to
// compute the theoretical upper bound on multipath transfer rate when all
// peers allow redirection (Fig. 10 of the paper).
func MaxFlow(g *Digraph, s, t NodeID) float64 {
	if s == t {
		return Inf
	}
	n := g.N()
	// Residual capacities as adjacency matrix: fine for the overlay sizes
	// (n<=~300) this library targets.
	cap := make([][]float64, n)
	for i := range cap {
		cap[i] = make([]float64, n)
	}
	for u := 0; u < n; u++ {
		for _, a := range g.Out(u) {
			cap[u][a.To] += a.W
		}
	}
	total := 0.0
	parent := make([]NodeID, n)
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []NodeID{s}
		for len(queue) > 0 && parent[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if parent[v] == -1 && cap[u][v] > 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[t] == -1 {
			break
		}
		bottleneck := math.Inf(1)
		for v := t; v != s; v = parent[v] {
			bottleneck = math.Min(bottleneck, cap[parent[v]][v])
		}
		for v := t; v != s; v = parent[v] {
			cap[parent[v]][v] -= bottleneck
			cap[v][parent[v]] += bottleneck
		}
		total += bottleneck
	}
	return total
}

// VertexDisjointPaths returns the maximum number of s-t paths that share no
// intermediate vertices (and no edges), computed by node-splitting plus
// unit-capacity max-flow. It is the quantity plotted in Fig. 11. s and t
// themselves may appear in every path. A direct s->t edge counts as one path.
func VertexDisjointPaths(g *Digraph, s, t NodeID) int {
	if s == t {
		return 0
	}
	n := g.N()
	// Split each node v into v_in (v) and v_out (v+n) with capacity-1 arc,
	// except s and t which get infinite internal capacity.
	split := New(2 * n)
	for v := 0; v < n; v++ {
		c := 1.0
		if v == s || v == t {
			c = float64(n) // effectively unbounded
		}
		split.AddArc(v, v+n, c)
	}
	for u := 0; u < n; u++ {
		for _, a := range g.Out(u) {
			split.AddArc(u+n, a.To, 1)
		}
	}
	return int(MaxFlow(split, s, t+n) + 0.5)
}

// EdgeDisjointPaths returns the maximum number of s-t paths that share no
// edges, via unit-capacity max-flow.
func EdgeDisjointPaths(g *Digraph, s, t NodeID) int {
	if s == t {
		return 0
	}
	unit := New(g.N())
	for u := 0; u < g.N(); u++ {
		for _, a := range g.Out(u) {
			unit.AddArc(u, a.To, 1)
		}
	}
	return int(MaxFlow(unit, s, t) + 0.5)
}
