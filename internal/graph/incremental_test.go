package graph

import (
	"math/rand"
	"testing"
)

// randomDigraphInc builds a random sparse digraph for the forest tests.
func randomDigraphInc(rng *rand.Rand, n, deg int) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for t := 0; t < deg; t++ {
			v := rng.Intn(n)
			if v != u {
				g.AddArc(u, v, 0.5+rng.Float64()*20)
			}
		}
	}
	return g
}

// apspRemoved computes the ground truth: APSP of g with u's out-arcs
// removed.
func apspRemoved(g *Digraph, u int, widest bool) [][]float64 {
	r := g.Clone()
	r.ClearOut(u)
	if widest {
		return APWidest(r)
	}
	return APSP(r)
}

// TestSPForestMatchesAPSP checks the incremental removal repair produces
// the exact same matrix as a from-scratch APSP of the edited graph, and
// that RestoreOut returns the exact original matrix — for both algebras,
// across many random graphs and removal targets.
func TestSPForestMatchesAPSP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, widest := range []bool{false, true} {
		f := NewSPForest()
		for trial := 0; trial < 20; trial++ {
			n := 8 + rng.Intn(40)
			g := randomDigraphInc(rng, n, 1+rng.Intn(3))
			f.Reset(g, widest)
			var full [][]float64
			if widest {
				full = APWidest(g)
			} else {
				full = APSP(g)
			}
			checkEqualMatrix(t, "after Reset", f.Dist(), full)
			// Several remove/restore cycles on the same forest.
			for round := 0; round < 6; round++ {
				u := rng.Intn(n)
				f.RemoveOut(u)
				checkEqualMatrix(t, "after RemoveOut", f.Dist(), apspRemoved(g, u, widest))
				f.RestoreOut()
				checkEqualMatrix(t, "after RestoreOut", f.Dist(), full)
			}
		}
	}
}

// TestSPForestAllNodesSweep mimics the proposal phase: remove and
// restore every node in turn on one forest, checking each residual
// matrix exactly.
func TestSPForestAllNodesSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomDigraphInc(rng, 60, 3)
	f := NewSPForest()
	f.Reset(g, false)
	for u := 0; u < g.N(); u++ {
		f.RemoveOut(u)
		checkEqualMatrix(t, "sweep", f.Dist(), apspRemoved(g, u, false))
		f.RestoreOut()
	}
	checkEqualMatrix(t, "sweep end", f.Dist(), APSP(g))
}

// TestSPForestIsolatedAndLeaf covers the trivial repairs: removing the
// arcs of a node with no out-arcs and of a pure leaf.
func TestSPForestIsolatedAndLeaf(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	// node 3 isolated; node 2 is a sink.
	f := NewSPForest()
	f.Reset(g, false)
	for _, u := range []int{3, 2} {
		f.RemoveOut(u)
		checkEqualMatrix(t, "trivial", f.Dist(), apspRemoved(g, u, false))
		f.RestoreOut()
	}
}

func checkEqualMatrix(t *testing.T, where string, got, want [][]float64) {
	t.Helper()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: dist[%d][%d] = %v, want %v", where, i, j, got[i][j], want[i][j])
			}
		}
	}
}
