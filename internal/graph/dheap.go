package graph

// dheap is an inlined 4-ary heap of (node, key) entries for the hot
// Dijkstra variants. container/heap costs an interface allocation per
// push (boxing heapItem into interface{}) and a dynamic dispatch per
// comparison; with tens of thousands of single-source runs per epoch in
// the scale engine those two were nearly half the CPU profile. The
// 4-ary layout halves the sift-down depth versus a binary heap — pops
// dominate under Dijkstra's lazy-deletion duplicates — and the min and
// max orders get separate push/pop pairs so every comparison is a
// direct float compare the compiler can inline.
type dheap struct {
	items []heapItem
}

// pushMin inserts under the min-key order (shortest paths).
func (h *dheap) pushMin(node NodeID, key float64) {
	h.items = append(h.items, heapItem{node: node, key: key})
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 4
		if h.items[p].key <= key {
			break
		}
		h.items[i] = h.items[p]
		i = p
	}
	h.items[i] = heapItem{node: node, key: key}
}

// popMin removes the minimum-key entry.
func (h *dheap) popMin() heapItem {
	top := h.items[0]
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	n := len(h.items)
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		best := c
		bk := h.items[c].key
		for x := c + 1; x < end; x++ {
			if k := h.items[x].key; k < bk {
				best, bk = x, k
			}
		}
		if bk >= last.key {
			break
		}
		h.items[i] = h.items[best]
		i = best
	}
	h.items[i] = last
	return top
}

// pushMax inserts under the max-key order (widest paths).
func (h *dheap) pushMax(node NodeID, key float64) {
	h.items = append(h.items, heapItem{node: node, key: key})
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 4
		if h.items[p].key >= key {
			break
		}
		h.items[i] = h.items[p]
		i = p
	}
	h.items[i] = heapItem{node: node, key: key}
}

// popMax removes the maximum-key entry.
func (h *dheap) popMax() heapItem {
	top := h.items[0]
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	n := len(h.items)
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		best := c
		bk := h.items[c].key
		for x := c + 1; x < end; x++ {
			if k := h.items[x].key; k > bk {
				best, bk = x, k
			}
		}
		if bk <= last.key {
			break
		}
		h.items[i] = h.items[best]
		i = best
	}
	h.items[i] = last
	return top
}
