package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// TestDynamicRowsMatchesFresh drives DynamicRows through random
// whole-out-set replacements and checks every row equals a fresh
// Dijkstra on the edited graph after every Apply.
func TestDynamicRowsMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 120
	// Static weight per (u,v) pair, as the contract requires.
	weight := func(u, v int) float64 {
		return 0.5 + float64((u*31+v*17)%97)/7
	}
	randomOut := func(u, deg int) []Arc {
		seen := map[int]bool{u: true}
		var out []Arc
		for len(out) < deg {
			v := rng.Intn(n)
			if !seen[v] {
				seen[v] = true
				out = append(out, Arc{To: v, W: weight(u, v)})
			}
		}
		return out
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for _, a := range randomOut(u, 3) {
			g.AddArc(u, a.To, a.W)
		}
	}
	var sources []int
	for s := 0; s < n; s += 7 {
		sources = append(sources, s)
	}
	r := NewDynamicRows()
	r.Reset(g, sources, 2)

	check := func(when string) {
		t.Helper()
		var sp SPScratch
		want := make([]float64, n)
		for i, s := range sources {
			sp.DijkstraDist(r.Graph(), s, want)
			got := r.RowAt(i)
			for v := 0; v < n; v++ {
				if got[v] != want[v] {
					t.Fatalf("%s: row %d (src %d) dist[%d] = %v, want %v", when, i, s, v, got[v], want[v])
				}
			}
			if r.Row(s) == nil {
				t.Fatalf("%s: Row(%d) nil", when, s)
			}
		}
	}
	check("after Reset")
	for round := 0; round < 25; round++ {
		var edits []RowEdit
		for e := 0; e < 1+rng.Intn(6); e++ {
			u := rng.Intn(n)
			edits = append(edits, RowEdit{Node: u, NewOut: randomOut(u, 1+rng.Intn(4))})
		}
		r.Apply(edits)
		check("after Apply")
	}
}

// TestDynamicRowsConcurrentReads exercises the concurrency contract
// the scale engine's proposal phase relies on: between mutations, any
// number of goroutines may read rows and the maintained graph
// concurrently and must all observe the same exact distances. The
// serial mutations between read phases are the misuse boundary — under
// -race this test proves the read phase is clean, and the mutation
// guard would panic if a reader ever overlapped a mutation.
func TestDynamicRowsConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, readers = 80, 8
	weight := func(u, v int) float64 { return 1 + float64((u*13+v*29)%53)/9 }
	randomOut := func(u, deg int) []Arc {
		seen := map[int]bool{u: true}
		var out []Arc
		for len(out) < deg {
			v := rng.Intn(n)
			if !seen[v] {
				seen[v] = true
				out = append(out, Arc{To: v, W: weight(u, v)})
			}
		}
		return out
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for _, a := range randomOut(u, 3) {
			g.AddArc(u, a.To, a.W)
		}
	}
	sources := []int{0, 5, 11, 17, 23, 42}
	r := NewDynamicRows()
	r.Reset(g, sources, 2)

	for round := 0; round < 20; round++ {
		// Reference snapshot, then a concurrent read storm against it.
		want := make([][]float64, len(sources))
		for i := range sources {
			want[i] = append([]float64(nil), r.RowAt(i)...)
		}
		var wg sync.WaitGroup
		errc := make(chan string, readers)
		for w := 0; w < readers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, s := range sources {
					row := r.Row(s)
					at := r.RowAt(i)
					for v := 0; v < n; v++ {
						if row[v] != want[i][v] || at[v] != want[i][v] {
							select {
							case errc <- "concurrent read diverged from snapshot":
							default:
							}
							return
						}
					}
					if r.SlotOf(s) != i {
						select {
						case errc <- "SlotOf diverged":
						default:
						}
					}
					_ = r.Graph().Out(s) // graph reads share the same contract
				}
			}()
		}
		wg.Wait()
		select {
		case msg := <-errc:
			t.Fatalf("round %d: %s", round, msg)
		default:
		}
		// Serial mutation window: out-set edits plus source churn.
		u := rng.Intn(n)
		r.Apply([]RowEdit{{Node: u, NewOut: randomOut(u, 1+rng.Intn(4))}})
		if round%5 == 4 {
			v := sources[len(sources)-1]
			r.RemoveSource(v)
			r.AddSource(v)
			sources = append(sources[:len(sources)-1], v)
		}
	}
}

// TestDynamicRowsDisconnection covers cutting a node off entirely and
// reconnecting it.
func TestDynamicRowsDisconnection(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	g.AddArc(2, 3, 1)
	r := NewDynamicRows()
	r.Reset(g, []int{0}, 1)
	if d := r.RowAt(0)[3]; d != 3 {
		t.Fatalf("initial dist to 3 = %v", d)
	}
	r.Apply([]RowEdit{{Node: 1, NewOut: nil}})
	if d := r.RowAt(0)[2]; d != Inf {
		t.Fatalf("after cut, dist to 2 = %v, want Inf", d)
	}
	r.Apply([]RowEdit{{Node: 1, NewOut: []Arc{{To: 3, W: 5}}}})
	if d := r.RowAt(0)[3]; d != 6 {
		t.Fatalf("after reconnect, dist to 3 = %v, want 6", d)
	}
	if d := r.RowAt(0)[2]; d != Inf {
		t.Fatalf("2 should stay unreachable, got %v", d)
	}
	if r.Row(2) != nil {
		t.Fatal("non-source Row should be nil")
	}
}

// TestDynamicRowsSourceChurn drives AddSource/RemoveSource interleaved
// with Apply edits and checks every surviving row stays exact — the
// membership-event maintenance path of the scale engine's directory.
func TestDynamicRowsSourceChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 80
	weight := func(u, v int) float64 { return 0.5 + float64((u*13+v*29)%53)/9 }
	randomOut := func(u, deg int) []Arc {
		seen := map[int]bool{u: true}
		var out []Arc
		for len(out) < deg {
			v := rng.Intn(n)
			if !seen[v] {
				seen[v] = true
				out = append(out, Arc{To: v, W: weight(u, v)})
			}
		}
		return out
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for _, a := range randomOut(u, 3) {
			g.AddArc(u, a.To, a.W)
		}
	}
	sources := []int{0, 5, 10, 15}
	r := NewDynamicRows()
	r.Reset(g, sources, 1)

	inSet := map[int]bool{0: true, 5: true, 10: true, 15: true}
	check := func(when string) {
		t.Helper()
		var sp SPScratch
		want := make([]float64, n)
		for s := range inSet {
			slot := r.SlotOf(s)
			if slot < 0 {
				t.Fatalf("%s: source %d lost its slot", when, s)
			}
			sp.DijkstraDist(r.Graph(), s, want)
			got := r.RowAt(slot)
			for v := 0; v < n; v++ {
				if got[v] != want[v] {
					t.Fatalf("%s: src %d dist[%d] = %v, want %v", when, s, v, got[v], want[v])
				}
			}
		}
	}
	check("initial")
	for round := 0; round < 30; round++ {
		switch rng.Intn(3) {
		case 0:
			v := rng.Intn(n)
			r.AddSource(v)
			inSet[v] = true
		case 1:
			for s := range inSet {
				if len(inSet) > 1 {
					r.RemoveSource(s)
					delete(inSet, s)
					if r.SlotOf(s) != -1 {
						t.Fatalf("removed source %d still has slot %d", s, r.SlotOf(s))
					}
				}
				break
			}
		case 2:
			u := rng.Intn(n)
			r.Apply([]RowEdit{{Node: u, NewOut: randomOut(u, 1+rng.Intn(4))}})
		}
		check("after round")
	}
	if r.Resets() != 1 {
		t.Fatalf("Resets = %d, want 1", r.Resets())
	}
	if r.Applies() == 0 {
		t.Fatal("Applies = 0, want > 0")
	}
}
