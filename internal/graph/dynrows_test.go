package graph

import (
	"math/rand"
	"testing"
)

// TestDynamicRowsMatchesFresh drives DynamicRows through random
// whole-out-set replacements and checks every row equals a fresh
// Dijkstra on the edited graph after every Apply.
func TestDynamicRowsMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 120
	// Static weight per (u,v) pair, as the contract requires.
	weight := func(u, v int) float64 {
		return 0.5 + float64((u*31+v*17)%97)/7
	}
	randomOut := func(u, deg int) []Arc {
		seen := map[int]bool{u: true}
		var out []Arc
		for len(out) < deg {
			v := rng.Intn(n)
			if !seen[v] {
				seen[v] = true
				out = append(out, Arc{To: v, W: weight(u, v)})
			}
		}
		return out
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for _, a := range randomOut(u, 3) {
			g.AddArc(u, a.To, a.W)
		}
	}
	var sources []int
	for s := 0; s < n; s += 7 {
		sources = append(sources, s)
	}
	r := NewDynamicRows()
	r.Reset(g, sources, 2)

	check := func(when string) {
		t.Helper()
		var sp SPScratch
		want := make([]float64, n)
		for i, s := range sources {
			sp.DijkstraDist(r.Graph(), s, want)
			got := r.RowAt(i)
			for v := 0; v < n; v++ {
				if got[v] != want[v] {
					t.Fatalf("%s: row %d (src %d) dist[%d] = %v, want %v", when, i, s, v, got[v], want[v])
				}
			}
			if r.Row(s) == nil {
				t.Fatalf("%s: Row(%d) nil", when, s)
			}
		}
	}
	check("after Reset")
	for round := 0; round < 25; round++ {
		var edits []RowEdit
		for e := 0; e < 1+rng.Intn(6); e++ {
			u := rng.Intn(n)
			edits = append(edits, RowEdit{Node: u, NewOut: randomOut(u, 1+rng.Intn(4))})
		}
		r.Apply(edits)
		check("after Apply")
	}
}

// TestDynamicRowsDisconnection covers cutting a node off entirely and
// reconnecting it.
func TestDynamicRowsDisconnection(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	g.AddArc(2, 3, 1)
	r := NewDynamicRows()
	r.Reset(g, []int{0}, 1)
	if d := r.RowAt(0)[3]; d != 3 {
		t.Fatalf("initial dist to 3 = %v", d)
	}
	r.Apply([]RowEdit{{Node: 1, NewOut: nil}})
	if d := r.RowAt(0)[2]; d != Inf {
		t.Fatalf("after cut, dist to 2 = %v, want Inf", d)
	}
	r.Apply([]RowEdit{{Node: 1, NewOut: []Arc{{To: 3, W: 5}}}})
	if d := r.RowAt(0)[3]; d != 6 {
		t.Fatalf("after reconnect, dist to 3 = %v, want 6", d)
	}
	if d := r.RowAt(0)[2]; d != Inf {
		t.Fatalf("2 should stay unreachable, got %v", d)
	}
	if r.Row(2) != nil {
		t.Fatal("non-source Row should be nil")
	}
}
