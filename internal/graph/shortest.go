package graph

import (
	"container/heap"
	"math"
)

// Dijkstra computes single-source shortest additive path distances from src.
// dist[v] is math.Inf(1) if v is unreachable. parent[v] is the predecessor
// of v on a shortest path (-1 for src and unreachable nodes). Edge weights
// must be non-negative.
func Dijkstra(g *Digraph, src NodeID) (dist []float64, parent []NodeID) {
	n := g.N()
	dist = make([]float64, n)
	parent = make([]NodeID, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	pq := &nodeHeap{items: []heapItem{{node: src, key: 0}}, better: func(a, b float64) bool { return a < b }}
	done := make([]bool, n)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, a := range g.Out(u) {
			if nd := dist[u] + a.W; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = u
				heap.Push(pq, heapItem{node: a.To, key: nd})
			}
		}
	}
	return dist, parent
}

// Widest computes single-source widest-path (maximum bottleneck) values
// from src: width[v] is the maximum over all src->v paths of the minimum
// edge weight along the path. This is the "Maximum Bottleneck Bandwidth"
// problem of Sect. 4.1 of the paper, solved with the standard modification
// of Dijkstra. width[src] is math.Inf(1) (no bottleneck to oneself);
// unreachable nodes have width 0.
func Widest(g *Digraph, src NodeID) (width []float64, parent []NodeID) {
	n := g.N()
	width = make([]float64, n)
	parent = make([]NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	width[src] = Inf
	pq := &nodeHeap{items: []heapItem{{node: src, key: Inf}}, better: func(a, b float64) bool { return a > b }}
	done := make([]bool, n)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, a := range g.Out(u) {
			if nw := math.Min(width[u], a.W); nw > width[a.To] {
				width[a.To] = nw
				parent[a.To] = u
				heap.Push(pq, heapItem{node: a.To, key: nw})
			}
		}
	}
	return width, parent
}

// APSP computes all-pairs shortest additive distances by running Dijkstra
// from every source. The result is indexed [src][dst].
func APSP(g *Digraph) [][]float64 {
	return APSPInto(g, nil, nil)
}

// APWidest computes all-pairs widest-path values.
func APWidest(g *Digraph) [][]float64 {
	return APWidestInto(g, nil, nil)
}

// APSPInto is APSP with reusable storage: rows of dst are overwritten and
// returned when dst has the right shape (allocated otherwise), and s, when
// non-nil, supplies the per-run Dijkstra state. This is the allocation-free
// hot path of the best-response engine: every re-wiring recomputes a
// residual all-pairs matrix, and the matrix plus heap would otherwise be
// reallocated for each of them.
func APSPInto(g *Digraph, dst [][]float64, s *SPScratch) [][]float64 {
	n := g.N()
	dst = reshape(dst, n)
	if s == nil {
		s = &SPScratch{}
	}
	for u := 0; u < n; u++ {
		s.DijkstraDist(g, u, dst[u])
	}
	return dst
}

// APWidestInto is APWidest with reusable storage, analogous to APSPInto.
func APWidestInto(g *Digraph, dst [][]float64, s *SPScratch) [][]float64 {
	n := g.N()
	dst = reshape(dst, n)
	if s == nil {
		s = &SPScratch{}
	}
	for u := 0; u < n; u++ {
		s.WidestDist(g, u, dst[u])
	}
	return dst
}

// reshape returns dst if it is an n×n matrix, else a freshly allocated one
// backed by a single contiguous block.
func reshape(dst [][]float64, n int) [][]float64 {
	if len(dst) == n && (n == 0 || len(dst[0]) == n) {
		return dst
	}
	flat := make([]float64, n*n)
	dst = make([][]float64, n)
	for i := range dst {
		dst[i] = flat[i*n : (i+1)*n]
	}
	return dst
}

// SPScratch holds the reusable per-run state of the Dijkstra variants:
// the priority-queue backing array. One scratch serves one goroutine;
// concurrent searches need one scratch each.
type SPScratch struct {
	items []heapItem
}

// DijkstraDist computes single-source shortest additive distances from src
// into dist, which must have length g.N(). It is Dijkstra without the
// parent tracking and without allocations (beyond heap growth on first
// use), running on the specialized inline heap: at 10⁴-node scale the
// engine spends most of its profile here, and container/heap's
// per-push interface boxing plus per-comparison closure dispatch were
// ~half of that cost. Stale heap entries are skipped by key comparison
// instead of a done-array, saving an O(n) clear per run.
func (s *SPScratch) DijkstraDist(g *Digraph, src NodeID, dist []float64) {
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	h := dheap{items: s.items[:0]}
	h.pushMin(src, 0)
	for len(h.items) > 0 {
		it := h.popMin()
		u := it.node
		if it.key != dist[u] {
			continue
		}
		for _, a := range g.Out(u) {
			if nd := it.key + a.W; nd < dist[a.To] {
				dist[a.To] = nd
				h.pushMin(a.To, nd)
			}
		}
	}
	s.items = h.items[:0]
}

// DijkstraDistSeeded is DijkstraDist with src's out-arcs supplied by the
// caller: the graph's stored out-arcs of src are ignored and the search
// starts from the seed arcs instead. Since a shortest path from src
// never revisits src under non-negative weights, the result is exactly
// the single-source distances of g with src's out-arc list replaced by
// seeds — which is how the scale engine prices a node's current wiring
// against a directory graph that may be a few re-wirings stale.
func (s *SPScratch) DijkstraDistSeeded(g *Digraph, src NodeID, seeds []Arc, dist []float64) {
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	h := dheap{items: s.items[:0]}
	for _, a := range seeds {
		if a.To != src && a.W < dist[a.To] {
			dist[a.To] = a.W
			h.pushMin(a.To, a.W)
		}
	}
	for len(h.items) > 0 {
		it := h.popMin()
		u := it.node
		if it.key != dist[u] {
			continue
		}
		for _, a := range g.Out(u) {
			if nd := it.key + a.W; nd < dist[a.To] {
				dist[a.To] = nd
				h.pushMin(a.To, nd)
			}
		}
	}
	s.items = h.items[:0]
}

// WidestDist computes single-source widest-path values from src into width,
// which must have length g.N(). It is Widest without the parent tracking
// and without allocations, on the same specialized heap as DijkstraDist.
func (s *SPScratch) WidestDist(g *Digraph, src NodeID, width []float64) {
	for i := range width {
		width[i] = 0
	}
	width[src] = Inf
	h := dheap{items: s.items[:0]}
	h.pushMax(src, Inf)
	for len(h.items) > 0 {
		it := h.popMax()
		u := it.node
		if it.key != width[u] {
			continue
		}
		for _, a := range g.Out(u) {
			if nw := math.Min(it.key, a.W); nw > width[a.To] {
				width[a.To] = nw
				h.pushMax(a.To, nw)
			}
		}
	}
	s.items = h.items[:0]
}

// PathTo reconstructs the path from the source used to build parent up to
// dst, inclusive of both endpoints. It returns nil if dst was unreachable.
func PathTo(parent []NodeID, src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	if parent[dst] == -1 {
		return nil
	}
	var rev []NodeID
	for v := dst; v != -1; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// heapItem is a priority-queue entry for Dijkstra variants.
type heapItem struct {
	node NodeID
	key  float64
}

// nodeHeap is a priority queue ordered by the better function
// (min-heap for shortest paths, max-heap for widest paths).
type nodeHeap struct {
	items  []heapItem
	better func(a, b float64) bool
}

func (h *nodeHeap) Len() int           { return len(h.items) }
func (h *nodeHeap) Less(i, j int) bool { return h.better(h.items[i].key, h.items[j].key) }
func (h *nodeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *nodeHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
