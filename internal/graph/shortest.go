package graph

import (
	"container/heap"
	"math"
)

// Dijkstra computes single-source shortest additive path distances from src.
// dist[v] is math.Inf(1) if v is unreachable. parent[v] is the predecessor
// of v on a shortest path (-1 for src and unreachable nodes). Edge weights
// must be non-negative.
func Dijkstra(g *Digraph, src NodeID) (dist []float64, parent []NodeID) {
	n := g.N()
	dist = make([]float64, n)
	parent = make([]NodeID, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	pq := &nodeHeap{items: []heapItem{{node: src, key: 0}}, better: func(a, b float64) bool { return a < b }}
	done := make([]bool, n)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, a := range g.Out(u) {
			if nd := dist[u] + a.W; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = u
				heap.Push(pq, heapItem{node: a.To, key: nd})
			}
		}
	}
	return dist, parent
}

// Widest computes single-source widest-path (maximum bottleneck) values
// from src: width[v] is the maximum over all src->v paths of the minimum
// edge weight along the path. This is the "Maximum Bottleneck Bandwidth"
// problem of Sect. 4.1 of the paper, solved with the standard modification
// of Dijkstra. width[src] is math.Inf(1) (no bottleneck to oneself);
// unreachable nodes have width 0.
func Widest(g *Digraph, src NodeID) (width []float64, parent []NodeID) {
	n := g.N()
	width = make([]float64, n)
	parent = make([]NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	width[src] = Inf
	pq := &nodeHeap{items: []heapItem{{node: src, key: Inf}}, better: func(a, b float64) bool { return a > b }}
	done := make([]bool, n)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, a := range g.Out(u) {
			if nw := math.Min(width[u], a.W); nw > width[a.To] {
				width[a.To] = nw
				parent[a.To] = u
				heap.Push(pq, heapItem{node: a.To, key: nw})
			}
		}
	}
	return width, parent
}

// APSP computes all-pairs shortest additive distances by running Dijkstra
// from every source. The result is indexed [src][dst].
func APSP(g *Digraph) [][]float64 {
	n := g.N()
	d := make([][]float64, n)
	for u := 0; u < n; u++ {
		d[u], _ = Dijkstra(g, u)
	}
	return d
}

// APWidest computes all-pairs widest-path values.
func APWidest(g *Digraph) [][]float64 {
	n := g.N()
	w := make([][]float64, n)
	for u := 0; u < n; u++ {
		w[u], _ = Widest(g, u)
	}
	return w
}

// PathTo reconstructs the path from the source used to build parent up to
// dst, inclusive of both endpoints. It returns nil if dst was unreachable.
func PathTo(parent []NodeID, src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	if parent[dst] == -1 {
		return nil
	}
	var rev []NodeID
	for v := dst; v != -1; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// heapItem is a priority-queue entry for Dijkstra variants.
type heapItem struct {
	node NodeID
	key  float64
}

// nodeHeap is a priority queue ordered by the better function
// (min-heap for shortest paths, max-heap for widest paths).
type nodeHeap struct {
	items  []heapItem
	better func(a, b float64) bool
}

func (h *nodeHeap) Len() int           { return len(h.items) }
func (h *nodeHeap) Less(i, j int) bool { return h.better(h.items[i].key, h.items[j].key) }
func (h *nodeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *nodeHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
