package graph

import (
	"math/rand"
	"testing"
)

// TestDijkstraDistSeededMatchesRebuiltGraph pins DijkstraDistSeeded's
// contract: the result equals plain DijkstraDist on a graph whose src
// out-arc list was physically replaced by the seed arcs — the stored
// out-arcs of src are ignored entirely.
func TestDijkstraDistSeededMatchesRebuiltGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(20)
		g := New(n)
		for u := 0; u < n; u++ {
			for a := 0; a < 3; a++ {
				v := rng.Intn(n)
				if v != u {
					g.AddArc(u, v, 1+rng.Float64()*9)
				}
			}
		}
		src := rng.Intn(n)
		// Seeds model a node's current wiring: unique targets (AddArc
		// replaces duplicate arcs, so duplicate seed targets would have
		// replaced-vs-min semantics the engine never exercises).
		var seeds []Arc
		used := map[int]bool{}
		for a := 0; a < rng.Intn(4); a++ {
			v := rng.Intn(n)
			if v != src && !used[v] {
				used[v] = true
				seeds = append(seeds, Arc{To: v, W: 1 + rng.Float64()*9})
			}
		}
		// Self-seeds must be ignored, like self-arcs.
		seeds = append(seeds, Arc{To: src, W: 0.5})

		ref := New(n)
		for u := 0; u < n; u++ {
			if u == src {
				continue
			}
			for _, a := range g.Out(u) {
				ref.AddArc(u, a.To, a.W)
			}
		}
		for _, a := range seeds {
			if a.To != src {
				ref.AddArc(src, a.To, a.W)
			}
		}

		var s SPScratch
		got := make([]float64, n)
		want := make([]float64, n)
		s.DijkstraDistSeeded(g, src, seeds, got)
		s.DijkstraDist(ref, src, want)
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("trial %d: dist[%d] = %v, rebuilt-graph reference %v", trial, v, got[v], want[v])
			}
		}
	}
}

// TestResizeReusesStorage covers the scratch-graph rebuild path the
// scale engine's per-node sub-instances rely on: Resize empties the
// graph at the new size, and arcs from a previous life never leak.
func TestResizeReusesStorage(t *testing.T) {
	g := New(5)
	for u := 0; u < 5; u++ {
		g.AddArc(u, (u+1)%5, 1)
	}
	g.Resize(3)
	if g.N() != 3 {
		t.Fatalf("N() = %d after Resize(3)", g.N())
	}
	for u := 0; u < 3; u++ {
		if len(g.Out(u)) != 0 {
			t.Fatalf("node %d kept %d stale arcs across Resize", u, len(g.Out(u)))
		}
	}
	g.AddArc(0, 2, 4)
	g.Resize(8)
	if g.N() != 8 {
		t.Fatalf("N() = %d after Resize(8)", g.N())
	}
	for u := 0; u < 8; u++ {
		if len(g.Out(u)) != 0 {
			t.Fatalf("node %d kept stale arcs after growing Resize", u)
		}
	}
}

func TestCSRAccessors(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(0, 2, 2)
	g.AddArc(2, 3, 3)
	c := NewCSR(4, g.Out)
	if c.N() != 4 {
		t.Fatalf("N() = %d", c.N())
	}
	if c.NumArcs() != 3 {
		t.Fatalf("NumArcs() = %d", c.NumArcs())
	}
	wantDeg := []int{2, 0, 1, 0}
	for u, want := range wantDeg {
		if d := c.OutDegree(u); d != want {
			t.Fatalf("OutDegree(%d) = %d, want %d", u, d, want)
		}
	}
}

func TestDynamicRowsSources(t *testing.T) {
	g := New(6)
	for u := 0; u < 6; u++ {
		g.AddArc(u, (u+1)%6, 1)
	}
	var r DynamicRows
	r.Reset(g, []int{1, 4}, 1)
	src := r.Sources()
	if len(src) != 2 || src[0] != 1 || src[1] != 4 {
		t.Fatalf("Sources() = %v, want [1 4]", src)
	}
}

func TestSPForestN(t *testing.T) {
	g := New(5)
	g.AddArc(0, 1, 1)
	f := NewSPForest()
	f.Reset(g, false)
	if f.N() != 5 {
		t.Fatalf("N() = %d, want 5", f.N())
	}
}
