package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomDigraph builds a random sparse digraph for equivalence checks.
func randomDigraph(n, arcsPerNode int, rng *rand.Rand) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for a := 0; a < arcsPerNode; a++ {
			v := rng.Intn(n)
			if v == u {
				continue
			}
			g.AddArc(u, v, 1+rng.Float64()*99)
		}
	}
	return g
}

func csrOf(g *Digraph) *CSR {
	return NewCSR(g.N(), func(u int) []Arc { return g.Out(u) })
}

// TestCSRPreservesAdjacency checks the packed form is the same graph.
func TestCSRPreservesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomDigraph(60, 4, rng)
	c := csrOf(g)
	if c.N() != g.N() || c.NumArcs() != g.NumArcs() {
		t.Fatalf("shape: csr %d/%d vs digraph %d/%d", c.N(), c.NumArcs(), g.N(), g.NumArcs())
	}
	for u := 0; u < g.N(); u++ {
		to, w := c.Out(u)
		if len(to) != g.OutDegree(u) {
			t.Fatalf("node %d: degree %d vs %d", u, len(to), g.OutDegree(u))
		}
		for x, v := range to {
			got, ok := g.Weight(u, int(v))
			if !ok || got != w[x] {
				t.Fatalf("node %d arc to %d: weight %v vs %v (ok=%v)", u, v, w[x], got, ok)
			}
		}
	}
}

// TestDijkstraCSRMatchesDigraph pins the data-plane invariant: the CSR
// Dijkstra is bit-identical (distances AND parent-path costs) to the
// reference Dijkstra over the equivalent Digraph.
func TestDijkstraCSRMatchesDigraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(80)
		g := randomDigraph(n, 1+rng.Intn(5), rng)
		c := csrOf(g)
		var s SPScratch
		dist := make([]float64, n)
		parent := make([]int32, n)
		for src := 0; src < n; src += 1 + n/7 {
			want, _ := Dijkstra(g, src)
			s.DijkstraCSR(c, src, dist, parent)
			for v := range dist {
				if math.Float64bits(dist[v]) != math.Float64bits(want[v]) {
					t.Fatalf("trial %d src %d: dist[%d] = %v, want %v", trial, src, v, dist[v], want[v])
				}
			}
			// Parent chains must realize exactly the claimed distances.
			for v := range dist {
				if dist[v] >= Inf || v == src {
					continue
				}
				path := PathTo32(parent, src, v)
				if path == nil {
					t.Fatalf("trial %d: no path %d->%d despite dist %v", trial, src, v, dist[v])
				}
				cost := 0.0
				for i := 1; i < len(path); i++ {
					w, ok := g.Weight(path[i-1], path[i])
					if !ok {
						t.Fatalf("trial %d: path %v uses missing arc %d->%d", trial, path, path[i-1], path[i])
					}
					cost += w
				}
				if math.Abs(cost-dist[v]) > 1e-9*math.Max(1, cost) {
					t.Fatalf("trial %d: path cost %v vs dist %v", trial, cost, dist[v])
				}
			}
		}
	}
}

// TestPathTo32Unreachable covers the nil cases.
func TestPathTo32Unreachable(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1)
	c := csrOf(g)
	var s SPScratch
	dist := make([]float64, 3)
	parent := make([]int32, 3)
	s.DijkstraCSR(c, 0, dist, parent)
	if p := PathTo32(parent, 0, 2); p != nil {
		t.Fatalf("path to unreachable node: %v", p)
	}
	if p := PathTo32(parent, 0, 0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("self path: %v", p)
	}
	if p := PathTo32(parent, 0, 1); len(p) != 2 || p[1] != 1 {
		t.Fatalf("one-hop path: %v", p)
	}
}
