package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N = %d, want 5", g.N())
	}
	if g.NumArcs() != 0 {
		t.Fatalf("NumArcs = %d, want 0", g.NumArcs())
	}
}

func TestAddArcReplacesWeight(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 5)
	g.AddArc(0, 1, 7)
	if g.NumArcs() != 1 {
		t.Fatalf("NumArcs = %d, want 1 after duplicate AddArc", g.NumArcs())
	}
	w, ok := g.Weight(0, 1)
	if !ok || w != 7 {
		t.Fatalf("Weight(0,1) = %v,%v, want 7,true", w, ok)
	}
}

func TestRemoveArc(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1)
	g.AddArc(0, 2, 2)
	if !g.RemoveArc(0, 1) {
		t.Fatal("RemoveArc(0,1) = false, want true")
	}
	if g.RemoveArc(0, 1) {
		t.Fatal("second RemoveArc(0,1) = true, want false")
	}
	if g.HasArc(0, 1) {
		t.Fatal("arc 0->1 still present after removal")
	}
	if !g.HasArc(0, 2) {
		t.Fatal("arc 0->2 lost by unrelated removal")
	}
}

func TestArcsAreDirected(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 3)
	if g.HasArc(1, 0) {
		t.Fatal("reverse arc should not exist")
	}
}

func TestClearNode(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	g.AddArc(2, 1, 1)
	g.AddArc(3, 1, 1)
	g.ClearNode(1)
	if g.NumArcs() != 0 {
		t.Fatalf("NumArcs = %d, want 0 after clearing the only connected node", g.NumArcs())
	}
}

func TestClearOutKeepsInArcs(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 0, 1)
	g.ClearOut(0)
	if g.HasArc(0, 1) {
		t.Fatal("out-arc survived ClearOut")
	}
	if !g.HasArc(1, 0) {
		t.Fatal("in-arc removed by ClearOut")
	}
}

func TestWithoutNode(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	r := g.WithoutNode(1)
	if r.NumArcs() != 0 {
		t.Fatalf("residual graph has %d arcs, want 0", r.NumArcs())
	}
	// Original untouched.
	if g.NumArcs() != 2 {
		t.Fatalf("original mutated: %d arcs, want 2", g.NumArcs())
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(4)
	g.AddArc(0, 3, 1)
	g.AddArc(0, 1, 1)
	g.AddArc(0, 2, 1)
	ns := g.Neighbors(0)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("Neighbors not sorted: %v", ns)
		}
	}
}

func TestDijkstraLine(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 2)
	g.AddArc(2, 3, 3)
	dist, parent := Dijkstra(g, 0)
	want := []float64{0, 1, 3, 6}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], w)
		}
	}
	path := PathTo(parent, 0, 3)
	if len(path) != 4 || path[0] != 0 || path[3] != 3 {
		t.Errorf("PathTo = %v, want [0 1 2 3]", path)
	}
}

func TestDijkstraPrefersCheaperIndirect(t *testing.T) {
	g := New(3)
	g.AddArc(0, 2, 10)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	dist, _ := Dijkstra(g, 0)
	if dist[2] != 2 {
		t.Fatalf("dist[2] = %v, want 2 (via node 1)", dist[2])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1)
	dist, parent := Dijkstra(g, 0)
	if !math.IsInf(dist[2], 1) {
		t.Fatalf("dist[2] = %v, want +Inf", dist[2])
	}
	if PathTo(parent, 0, 2) != nil {
		t.Fatal("PathTo to unreachable node should be nil")
	}
}

func TestDijkstraRespectsDirection(t *testing.T) {
	g := New(2)
	g.AddArc(1, 0, 1)
	dist, _ := Dijkstra(g, 0)
	if !math.IsInf(dist[1], 1) {
		t.Fatalf("dist[1] = %v, want +Inf (arc points the other way)", dist[1])
	}
}

func TestWidestPicksFatterPath(t *testing.T) {
	// Direct thin pipe vs indirect fat pipe.
	g := New(3)
	g.AddArc(0, 2, 1)  // thin direct
	g.AddArc(0, 1, 10) // fat hop 1
	g.AddArc(1, 2, 8)  // fat hop 2
	width, parent := Widest(g, 0)
	if width[2] != 8 {
		t.Fatalf("width[2] = %v, want 8", width[2])
	}
	path := PathTo(parent, 0, 2)
	if len(path) != 3 {
		t.Fatalf("widest path = %v, want via node 1", path)
	}
}

func TestWidestUnreachableIsZero(t *testing.T) {
	g := New(2)
	width, _ := Widest(g, 0)
	if width[1] != 0 {
		t.Fatalf("width[1] = %v, want 0", width[1])
	}
	if !math.IsInf(width[0], 1) {
		t.Fatalf("width[src] = %v, want +Inf", width[0])
	}
}

func TestAPSPMatchesDijkstra(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 20, 0.2)
	d := APSP(g)
	for src := 0; src < g.N(); src++ {
		single, _ := Dijkstra(g, src)
		for v := range single {
			if d[src][v] != single[v] {
				t.Fatalf("APSP[%d][%d]=%v != Dijkstra %v", src, v, d[src][v], single[v])
			}
		}
	}
}

func TestStronglyConnectedRing(t *testing.T) {
	g := New(5)
	for i := 0; i < 5; i++ {
		g.AddArc(i, (i+1)%5, 1)
	}
	if !StronglyConnected(g, nil) {
		t.Fatal("directed ring should be strongly connected")
	}
	g.RemoveArc(2, 3)
	if StronglyConnected(g, nil) {
		t.Fatal("broken ring should not be strongly connected")
	}
}

func TestStronglyConnectedMasked(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 0, 1)
	// node 2,3 isolated but inactive.
	active := []bool{true, true, false, false}
	if !StronglyConnected(g, active) {
		t.Fatal("active subgraph {0,1} should be strongly connected")
	}
	active[2] = true
	if StronglyConnected(g, active) {
		t.Fatal("isolated active node should break strong connectivity")
	}
}

func TestStronglyConnectedTrivial(t *testing.T) {
	if !StronglyConnected(New(0), nil) {
		t.Fatal("empty graph should be trivially strongly connected")
	}
	if !StronglyConnected(New(1), nil) {
		t.Fatal("singleton graph should be trivially strongly connected")
	}
}

func TestHopDistances(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 99)
	g.AddArc(1, 2, 99)
	dist := HopDistances(g, 0)
	want := []int{0, 1, 2, -1}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("hop[%d] = %d, want %d", i, dist[i], w)
		}
	}
}

func TestNeighborhoodRadius(t *testing.T) {
	// 0 -> 1 -> 2 -> 3
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	g.AddArc(2, 3, 1)
	if got := NeighborhoodSize(g, 0, 1); got != 1 {
		t.Errorf("r=1: |F| = %d, want 1", got)
	}
	if got := NeighborhoodSize(g, 0, 2); got != 2 {
		t.Errorf("r=2: |F| = %d, want 2", got)
	}
	if got := NeighborhoodSize(g, 0, 10); got != 3 {
		t.Errorf("r=10: |F| = %d, want 3", got)
	}
}

func TestMaxFlowDiamond(t *testing.T) {
	// s=0, t=3, two disjoint unit paths plus a cross edge.
	g := New(4)
	g.AddArc(0, 1, 3)
	g.AddArc(0, 2, 2)
	g.AddArc(1, 3, 2)
	g.AddArc(2, 3, 3)
	g.AddArc(1, 2, 1)
	if f := MaxFlow(g, 0, 3); f != 5 {
		t.Fatalf("MaxFlow = %v, want 5", f)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1)
	if f := MaxFlow(g, 0, 2); f != 0 {
		t.Fatalf("MaxFlow = %v, want 0", f)
	}
}

func TestVertexDisjointPaths(t *testing.T) {
	// Two internally disjoint paths 0->1->3 and 0->2->3 plus direct 0->3.
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 3, 1)
	g.AddArc(0, 2, 1)
	g.AddArc(2, 3, 1)
	g.AddArc(0, 3, 1)
	if p := VertexDisjointPaths(g, 0, 3); p != 3 {
		t.Fatalf("VertexDisjointPaths = %d, want 3", p)
	}
}

func TestVertexDisjointSharedIntermediate(t *testing.T) {
	// Both paths must cross node 1: only one vertex-disjoint path.
	g := New(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	g.AddArc(1, 3, 1)
	g.AddArc(2, 3, 1)
	if p := VertexDisjointPaths(g, 0, 3); p != 1 {
		t.Fatalf("VertexDisjointPaths = %d, want 1", p)
	}
	if p := EdgeDisjointPaths(g, 0, 3); p != 1 {
		t.Fatalf("EdgeDisjointPaths = %d, want 1 (single out-edge at source)", p)
	}
}

func TestEdgeDisjointMoreThanVertexDisjoint(t *testing.T) {
	// 0->1->3, 0->2->1->... construct: edge-disjoint 2, vertex-disjoint 1.
	g := New(5)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 4, 1)
	g.AddArc(0, 2, 1)
	g.AddArc(2, 1, 1)
	g.AddArc(1, 3, 1)
	g.AddArc(3, 4, 1)
	if p := EdgeDisjointPaths(g, 0, 4); p != 2 {
		t.Fatalf("EdgeDisjointPaths = %d, want 2", p)
	}
	if p := VertexDisjointPaths(g, 0, 4); p != 1 {
		t.Fatalf("VertexDisjointPaths = %d, want 1 (all paths cross node 1)", p)
	}
}

// --- property-based tests -------------------------------------------------

func randomGraph(rng *rand.Rand, n int, p float64) *Digraph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.AddArc(u, v, 0.1+rng.Float64()*10)
			}
		}
	}
	return g
}

// Property: shortest-path distances satisfy the triangle inequality
// d(s,v) <= d(s,u) + w(u,v) for every edge (u,v).
func TestDijkstraTriangleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(15), 0.3)
		dist, _ := Dijkstra(g, 0)
		for u := 0; u < g.N(); u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, a := range g.Out(u) {
				if dist[a.To] > dist[u]+a.W+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: widest-path widths are "max-min consistent":
// width(v) >= min(width(u), w(u,v)) for every edge (u,v).
func TestWidestConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(15), 0.3)
		width, _ := Widest(g, 0)
		for u := 0; u < g.N(); u++ {
			for _, a := range g.Out(u) {
				if width[a.To] < math.Min(width[u], a.W)-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the widest-path value from s to t equals the max over s's
// out-arcs a of min(a.W, widest(a.To, t) in G) — verified against a
// brute-force DFS enumeration on small graphs.
func TestWidestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(5), 0.4)
		width, _ := Widest(g, 0)
		for v := 1; v < g.N(); v++ {
			want := bruteWidest(g, 0, v)
			got := width[v]
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func bruteWidest(g *Digraph, s, t NodeID) float64 {
	visited := make([]bool, g.N())
	var dfs func(u NodeID, width float64) float64
	dfs = func(u NodeID, width float64) float64 {
		if u == t {
			return width
		}
		visited[u] = true
		best := 0.0
		for _, a := range g.Out(u) {
			if !visited[a.To] {
				if w := dfs(a.To, math.Min(width, a.W)); w > best {
					best = w
				}
			}
		}
		visited[u] = false
		return best
	}
	return dfs(s, math.Inf(1))
}

// Property: max-flow equals the sum of vertex-disjoint path counts when all
// capacities are 1 and the graph has no direct structure sharing — weaker
// sanity: maxflow >= edge-disjoint >= vertex-disjoint.
func TestFlowOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 4+rng.Intn(8), 0.35)
		s, tt := 0, g.N()-1
		ed := EdgeDisjointPaths(g, s, tt)
		vd := VertexDisjointPaths(g, s, tt)
		return vd <= ed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Menger — the number of vertex-disjoint paths is positive iff
// t is reachable from s.
func TestDisjointPositiveIffReachable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 4+rng.Intn(8), 0.25)
		s, tt := 0, g.N()-1
		reach := Reachable(g, s)[tt]
		return (VertexDisjointPaths(g, s, tt) > 0) == reach
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDijkstra295(b *testing.B) {
	g := randomGraph(rand.New(rand.NewSource(7)), 295, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, i%g.N())
	}
}

func BenchmarkAPSP50(b *testing.B) {
	g := randomGraph(rand.New(rand.NewSource(7)), 50, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		APSP(g)
	}
}
