package graph

import (
	"sync/atomic"

	"egoist/internal/par"
)

// DynamicRows maintains exact single-source shortest-path distance rows
// from a fixed set of source nodes over a graph that evolves by
// whole-out-set replacements (a node re-wiring its overlay links) —
// the workhorse behind the scale engine's facility directory. A full
// rebuild runs one Dijkstra per source; Apply then repairs each row
// incrementally after a batch of re-wirings: rows whose shortest-path
// tree never used a changed node are verified untouched in O(k) per
// edit, and affected rows recompute only the invalidated subtrees plus
// an insertion relaxation — cost proportional to the churn, not to
// |sources|·n. Arc weights must be stable per (u,v) pair (the scale
// engine's delays are static); only the arc sets change.
//
// Repaired distances are exactly the distances a fresh Dijkstra on the
// edited graph would produce (same left-to-right per-path folds, same
// minima), so callers can treat rows as always-fresh.
//
// Concurrency contract: Reset, Apply, AddSource and RemoveSource are
// mutations and must run with no other call in flight. Between
// mutations, every read — Row, RowAt, Graph, Sources, SlotOf — is safe
// from any number of goroutines concurrently: the scale engine's
// parallel proposal phase prices candidates off these rows from all
// workers at once, and the adoption/churn mutations run strictly
// serially in between. The contract is enforced two ways: the readers
// panic if they observe a mutation in flight (a cheap atomic flag, so
// misuse fails loudly even without -race), and the race-detector
// stress suites hammer concurrent reads against serial mutations.
type DynamicRows struct {
	g       *Digraph
	rev     [][]Arc // reverse adjacency: rev[v] lists arcs u->v as {To: u, W: w}
	sources []int
	slot    []int32 // node id -> row index, -1 when absent
	dist    [][]float64
	parent  [][]int32
	workers int

	scratch []*dynScratch
	edits   []dynEdit

	// resets counts full rebuilds (Reset calls), applies incremental
	// repairs (Apply calls). The scale engine's churn tests pin the
	// directory-maintenance invariant on them: membership events must
	// never trigger a full rebuild, only Apply/AddSource/RemoveSource.
	resets, applies int

	// mutating is set for the duration of every mutation; readers check
	// it to fail loudly on a contract violation (reads racing a
	// mutation would otherwise return silently corrupt distances).
	mutating atomic.Bool
}

// beginMutate flags a mutation in flight; the returned func clears it.
func (r *DynamicRows) beginMutate() func() {
	if r.mutating.Swap(true) {
		panic("graph: concurrent DynamicRows mutations")
	}
	return func() { r.mutating.Store(false) }
}

// checkRead panics when a reader races a mutation — the misuse the
// concurrency contract above rules out.
func (r *DynamicRows) checkRead() {
	if r.mutating.Load() {
		panic("graph: DynamicRows read during Reset/Apply/AddSource/RemoveSource")
	}
}

// dynEdit is one node's out-set replacement with its prior arcs.
type dynEdit struct {
	node   int
	old    []Arc
	newOut []Arc
}

// dynScratch is one worker's repair state.
type dynScratch struct {
	childHead []int32
	childNext []int32
	queue     []int32
	oldDist   []float64
	affected  []bool
	heap      dheap
}

// RowEdit is one node's new out-arc set for Apply.
type RowEdit struct {
	Node   NodeID
	NewOut []Arc
}

// NewDynamicRows returns an empty row set; call Reset before use.
func NewDynamicRows() *DynamicRows { return &DynamicRows{} }

// Graph exposes the maintained graph. Callers may read it (e.g. run
// their own searches, concurrently) between mutations but must not
// mutate it.
func (r *DynamicRows) Graph() *Digraph {
	r.checkRead()
	return r.g
}

// Sources returns the current source set (aliased; do not modify).
func (r *DynamicRows) Sources() []int {
	r.checkRead()
	return r.sources
}

// Row returns the distance row of node v, or nil if v is not a source.
// The row is valid until the next mutation; concurrent reads between
// mutations are safe.
func (r *DynamicRows) Row(v NodeID) []float64 {
	r.checkRead()
	if s := r.slot[v]; s >= 0 {
		return r.dist[s]
	}
	return nil
}

// RowAt returns the i-th source's distance row.
func (r *DynamicRows) RowAt(i int) []float64 {
	r.checkRead()
	return r.dist[i]
}

// SlotOf returns the row index of source v, or -1 if v is not a source.
func (r *DynamicRows) SlotOf(v NodeID) int {
	r.checkRead()
	return int(r.slot[v])
}

// Resets reports how many full rebuilds (Reset calls) have run.
func (r *DynamicRows) Resets() int { return r.resets }

// Applies reports how many incremental repairs (Apply calls) have run.
func (r *DynamicRows) Applies() int { return r.applies }

// Reset rebuilds everything: graph copy, reverse adjacency, and one
// full Dijkstra row per source, fanned out over workers (0 = NumCPU).
func (r *DynamicRows) Reset(g *Digraph, sources []int, workers int) {
	defer r.beginMutate()()
	r.resets++
	n := g.N()
	if r.g == nil {
		r.g = New(n)
	}
	r.g.CopyFrom(g)
	r.workers = par.Workers(workers)
	if cap(r.rev) < n {
		r.rev = make([][]Arc, n)
	}
	r.rev = r.rev[:n]
	for v := range r.rev {
		r.rev[v] = r.rev[v][:0]
	}
	for u := 0; u < n; u++ {
		for _, a := range r.g.Out(u) {
			r.rev[a.To] = append(r.rev[a.To], Arc{To: u, W: a.W})
		}
	}
	if cap(r.slot) < n {
		r.slot = make([]int32, n)
	}
	r.slot = r.slot[:n]
	for v := range r.slot {
		r.slot[v] = -1
	}
	r.sources = append(r.sources[:0], sources...)
	for i, s := range r.sources {
		r.slot[s] = int32(i)
	}
	if cap(r.dist) < len(sources) {
		r.dist = make([][]float64, len(sources))
		r.parent = make([][]int32, len(sources))
	}
	r.dist = r.dist[:len(sources)]
	r.parent = r.parent[:len(sources)]
	if len(r.scratch) < r.workers {
		r.scratch = make([]*dynScratch, r.workers)
	}
	par.Do(len(sources), r.workers, func(worker, i int) {
		if r.dist[i] == nil || len(r.dist[i]) != n {
			r.dist[i] = make([]float64, n)
			r.parent[i] = make([]int32, n)
		}
		r.fullRow(i)
	})
}

// fullRow runs a fresh Dijkstra with parent tracking for row i.
func (r *DynamicRows) fullRow(i int) {
	dist, parent := r.dist[i], r.parent[i]
	for v := range dist {
		dist[v] = Inf
		parent[v] = -1
	}
	src := r.sources[i]
	dist[src] = 0
	h := dheap{}
	h.pushMin(src, 0)
	for len(h.items) > 0 {
		it := h.popMin()
		u := it.node
		if it.key != dist[u] {
			continue
		}
		for _, a := range r.g.Out(u) {
			if nd := it.key + a.W; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = int32(u)
				h.pushMin(a.To, nd)
			}
		}
	}
}

// Apply replaces the out-arc sets of the edited nodes and repairs every
// row. Edits take effect atomically: all rows see all edits.
func (r *DynamicRows) Apply(edits []RowEdit) {
	if len(edits) == 0 {
		return
	}
	defer r.beginMutate()()
	r.applies++
	r.edits = r.edits[:0]
	for _, e := range edits {
		de := dynEdit{node: e.Node}
		de.old = append([]Arc(nil), r.g.Out(e.Node)...)
		de.newOut = append([]Arc(nil), e.NewOut...)
		r.edits = append(r.edits, de)
		// Update the graph and the reverse adjacency.
		for _, a := range de.old {
			r.removeRev(a.To, e.Node)
		}
		r.g.ClearOut(e.Node)
		for _, a := range de.newOut {
			r.g.AddArc(e.Node, a.To, a.W)
			r.rev[a.To] = append(r.rev[a.To], Arc{To: e.Node, W: a.W})
		}
	}
	par.Do(len(r.sources), r.workers, func(worker, i int) {
		sc := r.scratch[worker]
		if sc == nil {
			sc = &dynScratch{}
			r.scratch[worker] = sc
		}
		r.repairRow(i, sc)
	})
}

// AddSource adds v as a new source with one fresh Dijkstra row — the
// per-event cost of bootstrapping a joining node into the scale
// engine's facility directory, O(E log n) instead of a full
// |sources|-row rebuild. No-op when v is already a source.
func (r *DynamicRows) AddSource(v NodeID) {
	if r.slot[v] >= 0 {
		return
	}
	defer r.beginMutate()()
	n := r.g.N()
	i := len(r.sources)
	r.slot[v] = int32(i)
	r.sources = append(r.sources, v)
	if i < cap(r.dist) && i < cap(r.parent) {
		r.dist = r.dist[:i+1]
		r.parent = r.parent[:i+1]
	} else {
		r.dist = append(r.dist, nil)
		r.parent = append(r.parent, nil)
	}
	if r.dist[i] == nil || len(r.dist[i]) != n {
		r.dist[i] = make([]float64, n)
		r.parent[i] = make([]int32, n)
	}
	r.fullRow(i)
}

// RemoveSource drops source v's row in O(1) by swapping the last row
// into its slot — used when a directory member leaves the overlay, so
// its (now meaningless) row stops being repaired. Callers that index
// rows positionally via RowAt must mirror the same swap on their own
// id arrays. No-op when v is not a source.
func (r *DynamicRows) RemoveSource(v NodeID) {
	s := r.slot[v]
	if s < 0 {
		return
	}
	defer r.beginMutate()()
	last := len(r.sources) - 1
	moved := r.sources[last]
	r.sources[s] = moved
	r.dist[s], r.dist[last] = r.dist[last], r.dist[s]
	r.parent[s], r.parent[last] = r.parent[last], r.parent[s]
	r.slot[moved] = s
	r.slot[v] = -1
	r.sources = r.sources[:last]
	r.dist = r.dist[:last]
	r.parent = r.parent[:last]
}

// removeRev deletes the reverse-adjacency entry v <- u.
func (r *DynamicRows) removeRev(v, u int) {
	list := r.rev[v]
	for x := range list {
		if list[x].To == u {
			list[x] = list[len(list)-1]
			r.rev[v] = list[:len(list)-1]
			return
		}
	}
}

// stillHas reports whether the edit's new out-set keeps an arc to v.
func (e *dynEdit) stillHas(v int) bool {
	for _, a := range e.newOut {
		if a.To == v {
			return true
		}
	}
	return false
}

// repairRow fixes row i after the recorded edits: subtree invalidation
// and boundary re-relaxation for removed tree arcs, then a global
// insertion relaxation for the added arcs.
func (r *DynamicRows) repairRow(i int, sc *dynScratch) {
	n := r.g.N()
	dist, parent := r.dist[i], r.parent[i]

	// Cut roots: former tree children of an edited node that lost their
	// tree arc. The queue is deduplicated via the affected marks so the
	// old-value bookkeeping below is exact.
	if cap(sc.affected) < n {
		sc.childHead = make([]int32, n)
		sc.childNext = make([]int32, n)
		sc.affected = make([]bool, n)
	}
	sc.affected = sc.affected[:n]
	sc.queue = sc.queue[:0]
	for ei := range r.edits {
		e := &r.edits[ei]
		for _, a := range e.old {
			if parent[a.To] == int32(e.node) && !e.stillHas(a.To) && !sc.affected[a.To] {
				sc.affected[a.To] = true
				sc.queue = append(sc.queue, int32(a.To))
			}
		}
	}
	if len(sc.queue) > 0 {
		// Collect descendants via one child-list pass.
		sc.childHead = sc.childHead[:n]
		sc.childNext = sc.childNext[:n]
		for v := range sc.childHead {
			sc.childHead[v] = -1
		}
		for v := 0; v < n; v++ {
			if p := parent[v]; p >= 0 {
				sc.childNext[v] = sc.childHead[p]
				sc.childHead[p] = int32(v)
			}
		}
		for qi := 0; qi < len(sc.queue); qi++ {
			v := sc.queue[qi]
			for c := sc.childHead[v]; c >= 0; c = sc.childNext[c] {
				if !sc.affected[c] {
					sc.affected[c] = true
					sc.queue = append(sc.queue, c)
				}
			}
		}
		sc.oldDist = sc.oldDist[:0]
		for _, v := range sc.queue {
			sc.oldDist = append(sc.oldDist, dist[v])
			dist[v] = Inf
			parent[v] = -1
		}
		// Boundary seeding via the reverse adjacency, then a Dijkstra
		// restricted to the affected region.
		h := &sc.heap
		h.items = h.items[:0]
		for _, v := range sc.queue {
			for _, a := range r.rev[v] {
				x := a.To
				if sc.affected[x] || dist[x] >= Inf {
					continue
				}
				if nd := dist[x] + a.W; nd < dist[v] {
					dist[v] = nd
					parent[v] = int32(x)
					h.pushMin(int(v), nd)
				}
			}
		}
		for len(h.items) > 0 {
			it := h.popMin()
			u := it.node
			if it.key != dist[u] {
				continue
			}
			for _, a := range r.g.Out(u) {
				if !sc.affected[a.To] {
					continue
				}
				if nd := it.key + a.W; nd < dist[a.To] {
					dist[a.To] = nd
					parent[a.To] = int32(u)
					h.pushMin(a.To, nd)
				}
			}
		}
		for _, v := range sc.queue {
			sc.affected[v] = false
		}
	}

	// Propagation relaxation: added arcs — and any affected node whose
	// repaired value landed BELOW its pre-edit value — may improve
	// nodes outside the affected region. The cut-repair above runs on
	// the edited graph, so a repaired node can come back cheaper
	// through a freshly inserted arc; without re-seeding those
	// decreases here they would stop at the region boundary (the
	// restricted Dijkstra never relaxes outward), leaving violated arcs
	// into untouched territory.
	h := &sc.heap
	h.items = h.items[:0]
	for qi, v := range sc.queue {
		if dist[v] < sc.oldDist[qi] {
			h.pushMin(int(v), dist[v])
		}
	}
	for ei := range r.edits {
		e := &r.edits[ei]
		du := dist[e.node]
		if du >= Inf {
			continue
		}
		for _, a := range e.newOut {
			if nd := du + a.W; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = int32(e.node)
				h.pushMin(a.To, nd)
			}
		}
	}
	for len(h.items) > 0 {
		it := h.popMin()
		u := it.node
		if it.key != dist[u] {
			continue
		}
		for _, a := range r.g.Out(u) {
			if nd := it.key + a.W; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = int32(u)
				h.pushMin(a.To, nd)
			}
		}
	}
}
