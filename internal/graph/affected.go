package graph

// Affected-row detection for incremental snapshot publication: given a
// settled single-source shortest-path row and a sparse set of out-row
// replacements, decide which rows the edits can actually change. It is
// the read-only counterpart of SPForest's subtree repair — the same
// "did a tree arc get cut, did a new arc undercut a label" test that
// repairAfterRemove uses to skip untouched trees, applied to arbitrary
// row replacements instead of a single removal.
//
// The guarantee is exact, not approximate: if RowCrossed reports false
// for a row against every edit, a from-scratch Dijkstra over the edited
// graph produces bit-identical distances. Both directions of change are
// ruled out — the old tree survives arc-for-arc with identical weights
// (so no label can get worse), and no surviving label admits a strict
// relaxation through an edited row (so none can get better); additive
// path costs fold left-to-right identically in both computations.
// Parent arrays are NOT pinned: an equal-cost tie may resolve to a
// different predecessor in a fresh computation, so carried rows promise
// identical costs, not identical paths.

// RowCrossed reports whether replacing node u's out-arcs — (oldTo,
// oldW) became (newTo, newW) — can change the shortest-path row (dist,
// parent) of some source. The test is conservative only in the cheap
// direction: it may report true for an edit that happens to leave the
// row intact, but a false is a proof that every distance is unchanged.
// The algebra is additive shortest paths (DijkstraCSR, the data
// plane's); widest-path rows need the inverted comparisons.
func RowCrossed(dist []float64, parent []int32, u int, oldTo []int32, oldW []float64, newTo []int32, newW []float64) bool {
	// A removed or re-weighted tree arc: u fed v's label through an arc
	// the new row no longer carries at the same weight.
	for x, v := range oldTo {
		if parent[v] == int32(u) && !rowHasArc(newTo, newW, v, oldW[x]) {
			return true
		}
	}
	// A new (or cheapened) arc that strictly undercuts a settled label.
	// An unreachable u (dist +Inf) can never undercut anything: the sum
	// stays +Inf and the comparison below stays false.
	du := dist[u]
	for x, v := range newTo {
		if rowHasArc(oldTo, oldW, v, newW[x]) {
			continue
		}
		if du+newW[x] < dist[v] {
			return true
		}
	}
	return false
}

// rowHasArc reports whether the parallel-slice arc row contains an arc
// to v with exactly weight w (float bit semantics: == comparison).
func rowHasArc(to []int32, w []float64, v int32, wt float64) bool {
	for i, t := range to {
		if t == v && w[i] == wt {
			return true
		}
	}
	return false
}

// arcsHaveArc is rowHasArc over an []Arc row.
func arcsHaveArc(arcs []Arc, v int, wt float64) bool {
	for _, a := range arcs {
		if a.To == v && a.W == wt {
			return true
		}
	}
	return false
}

// rowCrossedArcs is RowCrossed with both rows in []Arc form (the
// SPForest / RowEdit layout).
func rowCrossedArcs(dist []float64, parent []int32, u int, oldArcs, newArcs []Arc) bool {
	for _, a := range oldArcs {
		if parent[a.To] == int32(u) && !arcsHaveArc(newArcs, a.To, a.W) {
			return true
		}
	}
	du := dist[u]
	for _, a := range newArcs {
		if arcsHaveArc(oldArcs, a.To, a.W) {
			continue
		}
		if du+a.W < dist[a.To] {
			return true
		}
	}
	return false
}

// AffectedSources appends to out (and returns) the ascending list of
// sources whose maintained shortest-path rows the given out-row
// replacements can cross — the sources a publisher must recompute when
// patching a snapshot incrementally; every other row is guaranteed
// bit-identical after the edits. The edits describe complete
// replacements of each node's out-row, exactly like DynamicRows.Apply;
// the forest's own graph and matrices are not modified. Additive
// algebra only (the forest must have been Reset with widest=false).
func (f *SPForest) AffectedSources(edits []RowEdit, out []int) []int {
	if f.widest {
		panic("graph: AffectedSources on a widest-path forest")
	}
	if f.removedFrom >= 0 {
		panic("graph: AffectedSources with a removal outstanding")
	}
	for src := 0; src < f.n; src++ {
		for _, e := range edits {
			if rowCrossedArcs(f.dist[src], f.parent[src], e.Node, f.g.Out(e.Node), e.NewOut) {
				out = append(out, src)
				break
			}
		}
	}
	return out
}
