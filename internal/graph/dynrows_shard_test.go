package graph

import (
	"math/rand"
	"testing"
)

// TestDynamicRowsPartitionedInstances pins the multi-instance lifecycle
// the scale engine's shard layer builds on: the source set partitioned
// across several DynamicRows instances — each Reset over the same
// build graph and fed the identical Apply edit stream, with source
// churn routed to the owning instance — yields exactly the rows a
// single instance holding the full source set computes. This is the
// graph-level statement of the shard determinism contract: instance
// placement is invisible in the distances.
func TestDynamicRowsPartitionedInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n, parts = 90, 3
	weight := func(u, v int) float64 { return 0.5 + float64((u*19+v*37)%71)/8 }
	randomOut := func(u, deg int) []Arc {
		seen := map[int]bool{u: true}
		var out []Arc
		for len(out) < deg {
			v := rng.Intn(n)
			if !seen[v] {
				seen[v] = true
				out = append(out, Arc{To: v, W: weight(u, v)})
			}
		}
		return out
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for _, a := range randomOut(u, 3) {
			g.AddArc(u, a.To, a.W)
		}
	}
	owner := func(v int) int { return v * parts / n }

	// No initial source in the last band: instance 2 Resets empty (a
	// drained band) and only gains rows through later AddSource joins.
	var sources []int
	for s := 0; s < 2*n/parts; s += 4 {
		sources = append(sources, s)
	}
	whole := NewDynamicRows()
	whole.Reset(g, sources, 2)
	split := make([]*DynamicRows, parts)
	for p := range split {
		var mine []int
		for _, s := range sources {
			if owner(s) == p {
				mine = append(mine, s)
			}
		}
		split[p] = NewDynamicRows()
		split[p].Reset(g, mine, 1)
	}

	inSet := map[int]bool{}
	for _, s := range sources {
		inSet[s] = true
	}
	check := func(when string) {
		t.Helper()
		for s := range inSet {
			want := whole.Row(s)
			got := split[owner(s)].Row(s)
			if want == nil || got == nil {
				t.Fatalf("%s: source %d row missing (whole nil=%v, split nil=%v)", when, s, want == nil, got == nil)
			}
			for v := 0; v < n; v++ {
				if got[v] != want[v] {
					t.Fatalf("%s: src %d dist[%d] = %v via its instance, %v via the whole", when, s, v, got[v], want[v])
				}
			}
		}
	}
	check("after Reset")
	for round := 0; round < 30; round++ {
		switch rng.Intn(3) {
		case 0: // shared edit stream reaches every instance
			var edits []RowEdit
			for e := 0; e < 1+rng.Intn(4); e++ {
				u := rng.Intn(n)
				edits = append(edits, RowEdit{Node: u, NewOut: randomOut(u, 1+rng.Intn(4))})
			}
			whole.Apply(edits)
			for p := range split {
				split[p].Apply(edits)
			}
		case 1: // source join routes to the owner only
			v := rng.Intn(n)
			if !inSet[v] {
				inSet[v] = true
				whole.AddSource(v)
				split[owner(v)].AddSource(v)
			}
		case 2: // source leave routes to the owner only
			for s := range inSet {
				if len(inSet) > 1 {
					delete(inSet, s)
					whole.RemoveSource(s)
					split[owner(s)].RemoveSource(s)
					if split[owner(s)].Row(s) != nil {
						t.Fatalf("removed source %d still has a row in its instance", s)
					}
				}
				break
			}
		}
		check("after round")
	}
}
