// Package coords implements a Vivaldi-style virtual coordinate system —
// the stand-in for the pyxida system EGOIST uses for passive delay
// estimation (Sect. 4.1). Each node maintains a point in a 2-D Euclidean
// space plus a non-negative "height" modeling its access-link delay, and
// updates it with a spring-relaxation rule on every RTT observation.
//
// Coordinate estimates trade accuracy for probing cost: a node learns the
// distance to every other node from a single query instead of O(n) pings.
// The embedding error (typically 10–30 % median) is exactly the effect the
// paper's Fig. 1 (top-right) exercises.
package coords

import (
	"math"
	"sort"
	"sync"
)

// Coord is a point in the 2-D + height Vivaldi space.
type Coord struct {
	X, Y   float64
	Height float64 // non-negative access-link component
}

// Dist returns the predicted one-way delay between two coordinates:
// Euclidean distance in the plane plus both heights.
func Dist(a, b Coord) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y) + a.Height + b.Height
}

// Node is one participant's view of the coordinate system. It is safe for
// concurrent use: the live overlay updates it from its probing goroutine
// while the wiring goroutine queries it.
type Node struct {
	mu     sync.Mutex
	coord  Coord
	weight float64 // local error estimate in [0,1]; lower is more confident

	ce float64 // error sensitivity constant
	cc float64 // coordinate update gain
}

// NewNode returns a node at the origin with maximal error.
func NewNode() *Node {
	return &Node{weight: 1, ce: 0.25, cc: 0.25, coord: Coord{Height: 0.1}}
}

// Coord returns the node's current coordinate.
func (n *Node) Coord() Coord {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.coord
}

// ErrorEstimate returns the node's current local error estimate in [0,1].
func (n *Node) ErrorEstimate() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.weight
}

// Observe updates the node's coordinate given a measured one-way delay (ms)
// to a remote node with the given coordinate and error estimate. It
// implements the Vivaldi adaptive-timestep update.
func (n *Node) Observe(remote Coord, remoteErr, measuredMS float64) {
	if measuredMS <= 0 || math.IsNaN(measuredMS) || math.IsInf(measuredMS, 0) {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()

	predicted := Dist(n.coord, remote)
	sampleErr := math.Abs(predicted-measuredMS) / measuredMS
	if sampleErr > 1 {
		sampleErr = 1
	}

	// Confidence-weighted blend of local and sample error.
	w := n.weight / (n.weight + math.Max(remoteErr, 1e-6))
	n.weight = sampleErr*n.ce*w + n.weight*(1-n.ce*w)

	// Spring force along the unit vector from remote to local: when the
	// prediction exceeds the measurement the spring is over-stretched and
	// pulls the local coordinate toward the remote one, and vice versa.
	force := predicted - measuredMS
	ux, uy := unitVector(n.coord, remote)
	delta := n.cc * w
	n.coord.X -= delta * force * ux
	n.coord.Y -= delta * force * uy
	n.coord.Height -= delta * force * (n.coord.Height / math.Max(predicted, 1e-9))
	if n.coord.Height < 0.05 {
		n.coord.Height = 0.05
	}
}

// unitVector returns the unit vector pointing from b to a in the plane,
// choosing a pseudo-random deterministic direction when the points coincide.
func unitVector(a, b Coord) (float64, float64) {
	dx, dy := a.X-b.X, a.Y-b.Y
	d := math.Hypot(dx, dy)
	if d < 1e-12 {
		return 1, 0
	}
	return dx / d, dy / d
}

// System is a registry of coordinate nodes for a whole overlay, mirroring
// the pyxida deployment: one query returns the distance estimates from one
// node to all others (the ≈(320+32n)/T bps message of Sect. 4.3).
type System struct {
	mu    sync.RWMutex
	nodes []*Node
}

// NewSystem creates a system with n coordinate nodes.
func NewSystem(n int) *System {
	s := &System{nodes: make([]*Node, n)}
	for i := range s.nodes {
		s.nodes[i] = NewNode()
	}
	return s
}

// N returns the number of nodes.
func (s *System) N() int { return len(s.nodes) }

// Node returns the i-th node.
func (s *System) Node(i int) *Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nodes[i]
}

// Estimate returns the coordinate-predicted one-way delay from i to j.
func (s *System) Estimate(i, j int) float64 {
	if i == j {
		return 0
	}
	s.mu.RLock()
	a, b := s.nodes[i], s.nodes[j]
	s.mu.RUnlock()
	return Dist(a.Coord(), b.Coord())
}

// EstimateAll returns the predicted delays from node i to every node
// (0 for itself) — the payload of one pyxida query.
func (s *System) EstimateAll(i int) []float64 {
	out := make([]float64, s.N())
	for j := range out {
		out[j] = s.Estimate(i, j)
	}
	return out
}

// Observe routes a delay observation between nodes i and j into node i's
// coordinate update.
func (s *System) Observe(i, j int, measuredMS float64) {
	s.mu.RLock()
	a, b := s.nodes[i], s.nodes[j]
	s.mu.RUnlock()
	a.Observe(b.Coord(), b.ErrorEstimate(), measuredMS)
}

// Calibrate runs rounds of all-pairs gossip against the true delay function,
// converging the embedding the way a deployed pyxida would after its warmup
// period. sampler(i,j) must return a measured one-way delay in ms.
func (s *System) Calibrate(rounds int, sampler func(i, j int) float64) {
	n := s.N()
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					s.Observe(i, j, sampler(i, j))
				}
			}
		}
	}
}

// MedianRelativeError reports the median relative error of the embedding
// against the true delay function — the standard Vivaldi accuracy metric,
// exposed for tests and the experiment harness.
func (s *System) MedianRelativeError(truth func(i, j int) float64) float64 {
	var errs []float64
	n := s.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			tr := truth(i, j)
			if tr <= 0 {
				continue
			}
			errs = append(errs, math.Abs(s.Estimate(i, j)-tr)/tr)
		}
	}
	if len(errs) == 0 {
		return 0
	}
	return median(errs)
}

func median(xs []float64) float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	mid := len(c) / 2
	if len(c)%2 == 1 {
		return c[mid]
	}
	return (c[mid-1] + c[mid]) / 2
}
