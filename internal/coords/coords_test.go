package coords

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"egoist/internal/underlay"
)

func TestDistSymmetricAndNonNegative(t *testing.T) {
	a := Coord{X: 1, Y: 2, Height: 3}
	b := Coord{X: -4, Y: 0, Height: 1}
	if Dist(a, b) != Dist(b, a) {
		t.Fatal("Dist not symmetric")
	}
	if Dist(a, b) < 0 {
		t.Fatal("Dist negative")
	}
	if got := Dist(a, a); got != 2*a.Height {
		t.Fatalf("self distance = %v, want 2*height", got)
	}
}

func TestObserveIgnoresGarbage(t *testing.T) {
	n := NewNode()
	before := n.Coord()
	n.Observe(Coord{X: 10}, 0.5, -1)
	n.Observe(Coord{X: 10}, 0.5, math.NaN())
	n.Observe(Coord{X: 10}, 0.5, math.Inf(1))
	if n.Coord() != before {
		t.Fatal("coordinate moved on invalid measurement")
	}
}

func TestObserveMovesTowardTruth(t *testing.T) {
	n := NewNode()
	remote := Coord{X: 100, Y: 0, Height: 0.1}
	// True delay 10ms, initial prediction ~100ms: node should move closer.
	predBefore := Dist(n.Coord(), remote)
	for i := 0; i < 20; i++ {
		n.Observe(remote, 0.5, 10)
	}
	predAfter := Dist(n.Coord(), remote)
	if math.Abs(predAfter-10) >= math.Abs(predBefore-10) {
		t.Fatalf("prediction error grew: before %v after %v", predBefore, predAfter)
	}
}

func TestErrorEstimateDecreases(t *testing.T) {
	n := NewNode()
	if n.ErrorEstimate() != 1 {
		t.Fatalf("initial error = %v, want 1", n.ErrorEstimate())
	}
	remote := Coord{X: 5, Y: 5, Height: 0.1}
	for i := 0; i < 50; i++ {
		n.Observe(remote, 0.2, Dist(n.Coord(), remote))
	}
	if n.ErrorEstimate() >= 1 {
		t.Fatalf("error did not decrease: %v", n.ErrorEstimate())
	}
}

func TestHeightStaysPositive(t *testing.T) {
	n := NewNode()
	for i := 0; i < 200; i++ {
		n.Observe(Coord{X: float64(i % 7), Height: 0.1}, 0.5, 0.5)
	}
	if n.Coord().Height <= 0 {
		t.Fatalf("height = %v, want > 0", n.Coord().Height)
	}
}

func TestSystemConvergesOnUnderlay(t *testing.T) {
	u, err := underlay.New(underlay.Config{N: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(u.N())
	rng := rand.New(rand.NewSource(1))
	sampler := func(i, j int) float64 {
		return u.Delay(i, j) * (1 + rng.NormFloat64()*0.03)
	}
	s.Calibrate(30, sampler)
	med := s.MedianRelativeError(func(i, j int) float64 { return u.Delay(i, j) })
	if med > 0.5 {
		t.Fatalf("median embedding error %.2f, want < 0.5 after calibration", med)
	}
	if med <= 0 {
		t.Fatalf("median embedding error %.2f, want > 0 (it is an estimate, not an oracle)", med)
	}
}

func TestEstimateSelfZero(t *testing.T) {
	s := NewSystem(3)
	if s.Estimate(1, 1) != 0 {
		t.Fatal("self estimate should be 0")
	}
	all := s.EstimateAll(1)
	if len(all) != 3 || all[1] != 0 {
		t.Fatalf("EstimateAll = %v", all)
	}
}

func TestSystemConcurrentUse(t *testing.T) {
	s := NewSystem(10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Observe(w%10, (w+i)%10, float64(1+i%40))
				_ = s.Estimate((w+i)%10, w%10)
			}
		}(w)
	}
	wg.Wait() // run with -race to catch data races
}

func TestMedianOddEven(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median odd = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("median even = %v, want 2.5", got)
	}
}
