// Scalability via sampling (paper Sect. 5, Figs. 5–8): a newcomer joins a
// large overlay computing its Best Response on a small sample of the
// residual graph. Compares unbiased random sampling (BR) with
// topology-biased sampling (BRtp) and the heuristics, normalized by BR
// without sampling.
package main

import (
	"fmt"
	"log"

	"egoist"
)

func main() {
	const n = 200 // overlay size including the newcomer
	const k = 3

	strategies := []string{"BR", "BRtp", "k-Closest", "k-Random", "k-Regular"}

	for _, base := range []egoist.PolicyKind{egoist.BR, egoist.KRandom} {
		fmt.Printf("== newcomer joins a %v-grown graph (n=%d, k=%d, r=2) ==\n", base, n-1, k)
		fmt.Print("sample ")
		for _, s := range strategies {
			fmt.Printf("%-11s", s)
		}
		fmt.Println("(cost / BR-no-sampling)")
		for _, m := range []int{6, 10, 14, 20} {
			// Average a few trials per sample size.
			acc := map[string]float64{}
			const trials = 4
			for t := 0; t < trials; t++ {
				res, err := egoist.SampleJoin(egoist.SampleJoinOptions{
					N: n, K: k, SampleSize: m, Radius: 2,
					Graph: base, Seed: int64(100*m + t),
				})
				if err != nil {
					log.Fatal(err)
				}
				for _, s := range strategies {
					acc[s] += res.Ratio[s]
				}
			}
			fmt.Printf("%-7d", m)
			for _, s := range strategies {
				fmt.Printf("%-11.3f", acc[s]/trials)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("BRtp ≈ BR-no-sampling with a fraction of the input, and both")
	fmt.Println("sampled BRs beat the heuristics — the Figs. 5-8 result.")
}
