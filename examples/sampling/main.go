// Scalability via sampling (paper Sect. 5, Figs. 5–8), in two acts:
//
//  1. The paper's newcomer experiment: a node joins a large overlay
//     computing its Best Response on a small sample of the residual
//     graph. Compares unbiased random sampling (BR) with
//     topology-biased sampling (BRtp) and the heuristics, normalized by
//     BR without sampling.
//
//  2. The large-scale simulation mode (egoist.ScaleRun): the same idea
//     applied to *every* node of a 2000-node overlay — per epoch each
//     node draws a demand-weighted destination sample, optimizes an
//     unbiased estimate of its full-roster cost, and re-wires under
//     BR(ε). Watch the estimated cost fall and the re-wiring activity
//     die out as the selfish dynamics converge.
package main

import (
	"fmt"
	"log"

	"egoist"
)

func scaleAct() {
	const n = 2000
	fmt.Printf("== sampled best-response dynamics at scale (n=%d, demand:%d) ==\n", n, n/20)
	res, err := egoist.ScaleRun(egoist.ScaleOptions{N: n, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("epoch  rewires  est. cost/node   ±95% band")
	for e, ep := range res.PerEpoch {
		fmt.Printf("%-6d %-8d %-16.0f %-12.0f\n", e, ep.Rewires, ep.EstCost, ep.Band)
	}
	fmt.Printf("converged=%v after %d epochs\n\n", res.Converged, res.Epochs)
}

func main() {
	scaleAct()
	const n = 200 // overlay size including the newcomer
	const k = 3

	strategies := []string{"BR", "BRtp", "k-Closest", "k-Random", "k-Regular"}

	for _, base := range []egoist.PolicyKind{egoist.BR, egoist.KRandom} {
		fmt.Printf("== newcomer joins a %v-grown graph (n=%d, k=%d, r=2) ==\n", base, n-1, k)
		fmt.Print("sample ")
		for _, s := range strategies {
			fmt.Printf("%-11s", s)
		}
		fmt.Println("(cost / BR-no-sampling)")
		for _, m := range []int{6, 10, 14, 20} {
			// Average a few trials per sample size.
			acc := map[string]float64{}
			const trials = 4
			for t := 0; t < trials; t++ {
				res, err := egoist.SampleJoin(egoist.SampleJoinOptions{
					N: n, K: k, SampleSize: m, Radius: 2,
					Graph: base, Seed: int64(100*m + t),
				})
				if err != nil {
					log.Fatal(err)
				}
				for _, s := range strategies {
					acc[s] += res.Ratio[s]
				}
			}
			fmt.Printf("%-7d", m)
			for _, s := range strategies {
				fmt.Printf("%-11.3f", acc[s]/trials)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("BRtp ≈ BR-no-sampling with a fraction of the input, and both")
	fmt.Println("sampled BRs beat the heuristics — the Figs. 5-8 result.")
}
