// Overlay routing data plane: bring up a live EGOIST overlay, let it
// selfishly converge, compile its wiring into an immutable route
// snapshot (internal/plane) and query it — full shortest-path routes
// and the paper's O(k) one-hop decisions — then route application
// payloads hop-by-hop over the overlay, with the redirected (via a
// chosen first hop) transmission of the Sect. 6 applications steered
// by the data plane's one-hop decision instead of an ad-hoc pick.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"egoist"
	"egoist/internal/plane"
)

func main() {
	const n, k = 10, 2
	lo, err := egoist.StartLocalOverlay(egoist.LiveOptions{
		N: n, K: k, Epoch: 150 * time.Millisecond, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lo.Stop()

	// Wait for full knowledge and at least one selfish re-wiring.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		full, rewired := true, 0
		for i := 0; i < n; i++ {
			if lo.Known(i) < n-1 {
				full = false
				break
			}
			rewired += lo.Rewires(i)
		}
		if full && rewired > 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("overlay converged; wiring:")
	wiring := lo.Wiring()
	for i, ws := range wiring {
		fmt.Printf("  node %d -> %v\n", i, ws)
	}

	// Compile the converged wiring into a route-serving snapshot: the
	// same lookup paths egoist-route serves at 10k-node scale, here over
	// the live overlay's true delay matrix.
	snap := plane.Compile(0, wiring, nil, plane.DelayFunc{
		Nodes: n,
		Fn:    func(i, j int) float64 { return lo.Delays[i][j] },
	}, plane.Options{})
	srv := plane.NewServer()
	srv.Publish(snap)
	fmt.Println("\ndata plane (snapshot of the converged wiring):")
	if r, ok := snap.Route(0, n-1); ok {
		fmt.Printf("  route 0 -> %d: path %v cost %.1fms (direct %.1fms)\n",
			n-1, r.Path, r.Cost, lo.Delays[0][n-1])
	}
	d := snap.OneHop(0, n-1)
	if d.Via >= 0 {
		fmt.Printf("  one-hop 0 -> %d: via neighbor %d at %.1fms\n", n-1, d.Via, d.Cost)
	} else {
		fmt.Printf("  one-hop 0 -> %d: direct at %.1fms\n", n-1, d.Cost)
	}

	// Every node acknowledges payloads it receives.
	var mu sync.Mutex
	received := map[int]int{}
	for i := 0; i < n; i++ {
		i := i
		lo.OnData(i, func(src int, payload []byte) {
			mu.Lock()
			received[i]++
			mu.Unlock()
		})
	}

	// Node 0 sends to everyone; with k=2 most routes are multi-hop.
	fmt.Println("\nrouting 9 payloads from node 0 ...")
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		got := len(received)
		mu.Unlock()
		if got >= n-1 {
			break
		}
		for dst := 1; dst < n; dst++ {
			_ = lo.Send(0, dst, []byte(fmt.Sprintf("hello %d", dst)))
		}
		time.Sleep(100 * time.Millisecond)
	}

	delivered, forwardedTotal := 0, 0
	for i := 0; i < n; i++ {
		d, f, _ := lo.DataStats(i)
		delivered += d
		forwardedTotal += f
	}
	fmt.Printf("delivered %d payloads; intermediate nodes forwarded %d times\n",
		delivered, forwardedTotal)

	// Redirected transmission through the first hop the data plane's
	// one-hop decision picked (falling back to any neighbor when the
	// decision says the direct path wins).
	if nbs := lo.Wiring()[0]; len(nbs) > 0 {
		via := d.Via
		if via < 0 {
			via = nbs[0]
		}
		if err := lo.SendVia(0, n-1, via, []byte("redirected")); err == nil {
			fmt.Printf("sent a payload to node %d redirected via neighbor %d\n", n-1, via)
		}
	}
	time.Sleep(300 * time.Millisecond)

	// Finale: a multipath file transfer (Sect. 6.1) between two fresh
	// endpoints — chunks spread over node 2's first-hop neighbors,
	// reassembled at node 7 with NACK repair.
	sender := lo.FileEndpoint(2)
	receiverNode := 7
	receiver := lo.FileEndpoint(receiverNode)
	var fileMu sync.Mutex
	var file []byte
	receiver.OnFile(func(src int, id uint64, data []byte) {
		fileMu.Lock()
		file = data
		fileMu.Unlock()
	})
	blob := make([]byte, 64*1024)
	for i := range blob {
		blob[i] = byte(i)
	}
	if _, err := sender.SendFile(receiverNode, blob, true); err != nil {
		log.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		fileMu.Lock()
		done := len(file) == len(blob)
		fileMu.Unlock()
		if done {
			break
		}
		receiver.Repair()
		time.Sleep(100 * time.Millisecond)
	}
	fileMu.Lock()
	fmt.Printf("\nmultipath file transfer: received %d/%d bytes at node %d\n",
		len(file), len(blob), receiverNode)
	fileMu.Unlock()
}
