// Churn robustness (paper Sect. 4.4, Fig. 2): sweep churn intensity and
// compare plain BR against HybridBR (which donates two links to a
// connectivity backbone) and the heuristics, using the paper's efficiency
// metric. Reproduces the crossover where HybridBR overtakes plain BR once
// membership changes approach one per re-wiring opportunity.
//
// With -scenario <file> the sweep is replaced by one declarative
// scenario run — the same spec format cmd/egoist-sim, cmd/egoist-bench
// and the CI matrix consume — on the engine the spec names (default:
// the full simulator, matching the sweep).
package main

import (
	"flag"
	"fmt"
	"log"

	"egoist"
	"egoist/internal/scenario"
)

// runScenario replays one spec file and prints its metrics record.
func runScenario(path string) {
	spec, err := scenario.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	engine := spec.Engine
	if engine == "" {
		engine = scenario.EngineFull
	}
	m, err := scenario.Run(spec, scenario.Options{Engine: engine})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s on %s: epochs=%d churn=%.4f joins=%d leaves=%d\n",
		m.Scenario, m.Engine, m.Epochs, m.ChurnRate, m.Joins, m.Leaves)
	fmt.Printf("mean rewires/epoch %.1f, final cost %.2f, recovery epochs %d\n",
		m.MeanRewires, m.FinalCost, m.RecoveryEpochs)
}

func main() {
	scenFile := flag.String("scenario", "", "run a declarative scenario spec file instead of the churn sweep")
	flag.Parse()
	if *scenFile != "" {
		runScenario(*scenFile)
		return
	}

	const n, k = 30, 4
	const horizon = 24.0 // epochs

	policies := []egoist.PolicyKind{egoist.BR, egoist.HybridBR, egoist.KClosest, egoist.KRandom}

	fmt.Println("churn(ev/epoch)   " +
		"BR        HybridBR  k-Closest k-Random   (efficiency, higher=better)")
	for _, target := range []float64{0.01, 0.1, 0.5, 1.5, 3} {
		total := 2 / target
		sched, err := egoist.MakeChurn(n, horizon, total*5/6, total/6, 33)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17.3f", egoist.ChurnRate(sched, horizon))
		for _, p := range policies {
			res, err := egoist.Simulate(egoist.SimOptions{
				N: n, K: k, Seed: 9,
				Policy:     p,
				Churn:      sched,
				WarmEpochs: 8, MeasureEpochs: 16,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %-9.4f", res.MeanEfficiency)
		}
		fmt.Println()
	}
	fmt.Println("\nAt low churn plain BR wins (donating links costs performance);")
	fmt.Println("as churn approaches O(n/T) events per epoch the HybridBR")
	fmt.Println("backbone pays for itself, as in Fig. 2 (right).")
}
