// Multipath file transfer (paper Sect. 6.1, Fig. 10): build a
// bandwidth-optimized EGOIST overlay, then measure how much more
// throughput a source can reach by opening parallel sessions through its
// first-hop overlay neighbors — escaping per-session rate caps at AS
// peering points — versus the single native IP path. Also reports the
// max-flow bound when every peer allows redirection.
package main

import (
	"fmt"
	"log"

	"egoist"
)

func main() {
	const n = 40
	const seed = 21

	u, err := egoist.NewUnderlay(n, seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("k   parallel-gain   redirection-gain (max-flow bound)")
	for _, k := range []int{2, 3, 4, 5, 6, 7, 8} {
		res, err := egoist.Simulate(egoist.SimOptions{
			N: n, K: k, Seed: seed,
			Metric:     egoist.Bandwidth,
			WarmEpochs: 8, MeasureEpochs: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		gain, err := egoist.MultipathGain(u, res.FinalWiring)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d   %13.2fx  %16.2fx\n", k, gain.ParallelGain, gain.RedirectionGain)
	}
	fmt.Println("\nGains > 1 mean the overlay beats the direct IP path; the gap")
	fmt.Println("between the two columns is the headroom full multipath")
	fmt.Println("redirection (Fig. 10, upper curve) adds over first-hop-only")
	fmt.Println("parallel sessions.")
}
