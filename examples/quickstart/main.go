// Quickstart: compare EGOIST's Best-Response neighbor selection against
// the empirical heuristics on a simulated 30-node overlay, then spin up a
// small live overlay (real link-state protocol over an in-memory datagram
// bus) and watch it converge.
package main

import (
	"fmt"
	"log"
	"time"

	"egoist"
)

func main() {
	// --- Part 1: simulated comparison (the Fig. 1 primitive) -------------
	fmt.Println("== Simulated 30-node overlay, k=4, delay metric ==")
	cmp, err := egoist.Compare(egoist.SimOptions{
		N: 30, K: 4, Seed: 7,
		Metric:     egoist.DelayPing,
		WarmEpochs: 10, MeasureEpochs: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cost normalized by BR (1.0 = BR; higher = worse):")
	for _, p := range []egoist.PolicyKind{egoist.BR, egoist.KClosest, egoist.KRandom, egoist.KRegular} {
		fmt.Printf("  %-10s %.2f\n", p, cmp.Normalized[p])
	}

	// --- Part 2: live overlay --------------------------------------------
	fmt.Println("\n== Live 8-node overlay (in-memory transport, BR policy) ==")
	lo, err := egoist.StartLocalOverlay(egoist.LiveOptions{
		N: 8, K: 2, Epoch: 200 * time.Millisecond, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lo.Stop()

	// Wait for full mutual knowledge and for selfish re-wiring to kick in.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		full, rewired := true, 0
		for i := 0; i < lo.N(); i++ {
			if lo.Known(i) < lo.N()-1 {
				full = false
				break
			}
			rewired += lo.Rewires(i)
		}
		if full && rewired > 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	rewires := 0
	for i := 0; i < lo.N(); i++ {
		fmt.Printf("  node %d: neighbors=%v (knows %d peers)\n", i, lo.Neighbors(i), lo.Known(i))
		rewires += lo.Rewires(i)
	}
	fmt.Printf("  total links established after bootstrap: %d\n", rewires)
}
